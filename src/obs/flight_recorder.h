#ifndef ROBUST_SAMPLING_OBS_FLIGHT_RECORDER_H_
#define ROBUST_SAMPLING_OBS_FLIGHT_RECORDER_H_

// ---------------------------------------------------------------------------
// Flight recorder: a fixed-size per-thread ring of trace events (span
// begin/end, marks, error marks) that costs nothing until something goes
// wrong, then leaves a readable post-mortem.
//
// Each thread records into its own bounded ring (one uncontended mutex
// acquire per event — events are span-granular, per batch/frame/trial,
// never per element), so recording threads do not serialize against each
// other. Dump() merges every thread's surviving events in global sequence
// order. RecordError() additionally fires the error hook: the default
// hook prints the merged dump to stderr once per process (so a fuzzing
// loop of ten thousand rejected frames does not spam the log); tests and
// services install their own with SetErrorHook.
//
// Wired in: the wire-codec frame failure paths (ReadFramedBody) and the
// pipeline checkpoint/restore failure paths call RecordError, so a
// corrupt restore or failed checkpoint leaves the event trail that led to
// it instead of nothing. See docs/observability.md.
//
// Compiled to no-ops (empty Dump) under RS_METRICS=OFF.
// ---------------------------------------------------------------------------

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "obs/metrics.h"  // RS_METRICS_ENABLED

namespace robust_sampling {
namespace obs {

enum class TraceEventKind : uint8_t {
  kSpanBegin,
  kSpanEnd,
  kMark,
  kError,
};

/// Events per thread ring; older events are overwritten (it is a flight
/// recorder, not a log).
inline constexpr size_t kFlightRecorderRingEvents = 256;

/// Inline detail buffer size shared by TraceEvent and TraceSpan, so span
/// details survive to the dump exactly as marks do (they used to be
/// truncated harder because the span kept a smaller private copy).
inline constexpr size_t kTraceDetailBytes = 96;

/// One recorded event. `category` must be a string with static storage
/// duration ("wire", "pipeline", ...); `detail` is copied (truncated) into
/// the inline buffer so recording never allocates.
struct TraceEvent {
  uint64_t seq = 0;  // global order
  uint64_t ns = 0;   // NowNanos() at record time
  uint32_t tid = 0;  // recording thread's ring id (stable, dense from 1)
  TraceEventKind kind = TraceEventKind::kMark;
  const char* category = "";
  char detail[kTraceDetailBytes] = {};
  uint64_t arg = 0;
};

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  void Record(TraceEventKind kind, const char* category,
              std::string_view detail, uint64_t arg = 0);

  /// Record(kError, ...) plus the error hook: the installed hook (or the
  /// print-once-to-stderr default) receives the merged Dump().
  void RecordError(const char* category, std::string_view detail,
                   uint64_t arg = 0);

  /// Every surviving event from every thread, merged in sequence order,
  /// one line per event. Empty under RS_METRICS=OFF.
  std::string Dump() const;

  /// The merged dump captured by the most recent RecordError(), even after
  /// the print-once default hook has fired (services scrape it via the
  /// admin plane's /trace endpoint). Empty until the first error and under
  /// RS_METRICS=OFF.
  std::string LastErrorDump() const;

  /// Every surviving event as Perfetto-loadable chrome-trace JSON
  /// ({"traceEvents":[...]}): span begin/end become "B"/"E" events, marks
  /// and errors become instants; ts is microseconds, tid is the recording
  /// thread's ring id. Always valid JSON — `{"traceEvents":[]}` when empty
  /// or under RS_METRICS=OFF.
  std::string DumpChromeTraceJson() const;

  /// Replaces the error hook; nullptr restores the default (print the
  /// dump to stderr, first error only).
  void SetErrorHook(std::function<void(const std::string&)> hook);

 private:
  FlightRecorder() = default;
#if RS_METRICS_ENABLED
  struct Impl;
  Impl* impl();
  std::atomic<Impl*> impl_{nullptr};
#endif
};

/// RAII span: records kSpanBegin at construction and kSpanEnd (with the
/// elapsed nanoseconds as `arg`) at destruction.
class TraceSpan {
 public:
#if RS_METRICS_ENABLED
  TraceSpan(const char* category, std::string_view detail)
      : category_(category), start_ns_(NowNanos()) {
    const size_t n = detail.size() < sizeof(detail_) - 1
                         ? detail.size()
                         : sizeof(detail_) - 1;
    detail.copy(detail_, n);
    detail_[n] = '\0';
    FlightRecorder::Global().Record(TraceEventKind::kSpanBegin, category_,
                                    detail_);
  }
  ~TraceSpan() {
    FlightRecorder::Global().Record(TraceEventKind::kSpanEnd, category_,
                                    detail_, NowNanos() - start_ns_);
  }

 private:
  const char* category_;
  uint64_t start_ns_;
  char detail_[kTraceDetailBytes] = {};
#else
  TraceSpan(const char*, std::string_view) {}
#endif
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

}  // namespace obs
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_OBS_FLIGHT_RECORDER_H_
