#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "wire/codec.h"

namespace robust_sampling {
namespace obs {

namespace {

// Requests are tiny (a GET line + a handful of headers); anything larger
// is not a scraper and gets 400.
constexpr size_t kMaxRequestBytes = 8192;

void SetDeadlines(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool WriteResponse(int fd, int status, const char* reason,
                   const std::string& content_type, const std::string& body) {
  std::string head = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (!wire::WriteAllFd(fd, head.data(), head.size(),
                        /*socket_nosignal=*/true)) {
    return false;
  }
  return wire::WriteAllFd(fd, body.data(), body.size(),
                          /*socket_nosignal=*/true);
}

}  // namespace

AdminServer::AdminServer(AdminServerOptions options) : options_(options) {
  RegisterHandler("/metrics", "text/plain; version=0.0.4; charset=utf-8",
                  [] { return MetricRegistry::Global().ToPrometheusText(); });
  RegisterHandler("/healthz", "text/plain; charset=utf-8",
                  [] { return std::string("ok\n"); });
  RegisterHandler("/trace", "text/plain; charset=utf-8", [] {
    std::string out = FlightRecorder::Global().Dump();
    const std::string last_error = FlightRecorder::Global().LastErrorDump();
    if (!last_error.empty()) {
      out += "\n--- last error post-mortem ---\n";
      out += last_error;
    }
    return out;
  });
  RegisterHandler("/trace.json", "application/json", [] {
    return FlightRecorder::Global().DumpChromeTraceJson();
  });
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::RegisterHandler(const std::string& path,
                                  const std::string& content_type,
                                  Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[path] = Endpoint{content_type, std::move(handler)};
}

bool AdminServer::Start(std::string* error) {
  if (started_) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = "bind: " + std::string(strerror(errno));
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    if (error != nullptr) *error = "listen: " + std::string(strerror(errno));
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    if (error != nullptr) {
      *error = "getsockname: " + std::string(strerror(errno));
    }
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return true;
}

void AdminServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(0, std::memory_order_release);
  started_ = false;
}

void AdminServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, options_.idle_poll_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) continue;  // idle poll tick: re-check the stop flag
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    SetDeadlines(conn, options_.io_timeout_ms);
    ServeConnection(conn);
    ::close(conn);
  }
}

void AdminServer::ServeConnection(int fd) {
  // Read until the end of the request headers; the body (none expected for
  // GET) is ignored.
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF, deadline, or error: serve what we have
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t method_end = request_line.find(' ');
  if (method_end == std::string::npos) {
    WriteResponse(fd, 400, "Bad Request", "text/plain; charset=utf-8",
                  "malformed request line\n");
    return;
  }
  const std::string method = request_line.substr(0, method_end);
  const size_t target_end = request_line.find(' ', method_end + 1);
  std::string target =
      target_end == std::string::npos
          ? request_line.substr(method_end + 1)
          : request_line.substr(method_end + 1, target_end - method_end - 1);
  const size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);
  if (method != "GET") {
    WriteResponse(fd, 405, "Method Not Allowed", "text/plain; charset=utf-8",
                  "only GET is served here\n");
    return;
  }
  Endpoint endpoint;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    const auto it = handlers_.find(target);
    if (it == handlers_.end()) {
      std::string known = "unknown path; try:\n";
      for (const auto& [path, unused] : handlers_) known += "  " + path + "\n";
      WriteResponse(fd, 404, "Not Found", "text/plain; charset=utf-8", known);
      return;
    }
    endpoint = it->second;
  }
  WriteResponse(fd, 200, "OK", endpoint.content_type, endpoint.handler());
}

}  // namespace obs
}  // namespace robust_sampling
