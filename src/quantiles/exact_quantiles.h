#ifndef ROBUST_SAMPLING_QUANTILES_EXACT_QUANTILES_H_
#define ROBUST_SAMPLING_QUANTILES_EXACT_QUANTILES_H_

#include <string>
#include <vector>

#include "quantiles/quantile_sketch.h"

namespace robust_sampling {

/// Ground-truth quantiles: stores the full stream and sorts lazily.
/// O(n) space — the oracle every sketch is measured against.
class ExactQuantiles : public QuantileSketch {
 public:
  ExactQuantiles() = default;

  /// Bulk construction from an existing stream.
  explicit ExactQuantiles(std::vector<double> data);

  void Insert(double x) override;
  double Quantile(double q) const override;
  double RankFraction(double x) const override;
  size_t StreamSize() const override { return data_.size(); }
  size_t SpaceItems() const override { return data_.size(); }
  std::string Name() const override { return "exact"; }

  /// Exact rank error of an estimate: |RankFraction(estimate) - q|,
  /// the metric used in experiment E7.
  double RankError(double q, double estimate) const;

 private:
  void EnsureSorted() const;

  std::vector<double> data_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_QUANTILES_EXACT_QUANTILES_H_
