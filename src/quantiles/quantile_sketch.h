#ifndef ROBUST_SAMPLING_QUANTILES_QUANTILE_SKETCH_H_
#define ROBUST_SAMPLING_QUANTILES_QUANTILE_SKETCH_H_

#include <cstddef>
#include <span>
#include <string>

namespace robust_sampling {

/// Common interface for streaming quantile summaries (the Corollary 1.5
/// application and its baselines).
///
/// Rank convention: `RankFraction(x)` estimates the fraction of stream
/// elements <= x; `Quantile(q)` returns an estimate of the smallest value v
/// whose rank fraction is >= q (so Quantile(0.5) is the lower median).
class QuantileSketch {
 public:
  virtual ~QuantileSketch() = default;

  /// Processes one stream element.
  virtual void Insert(double x) = 0;

  /// Processes a batch of stream elements. Semantically identical to
  /// inserting each element in order; implementations override to pay the
  /// virtual dispatch once per batch instead of once per element.
  virtual void InsertBatch(std::span<const double> xs) {
    for (double x : xs) Insert(x);
  }

  /// Estimated q-quantile, q in [0, 1]. Requires a non-empty stream.
  virtual double Quantile(double q) const = 0;

  /// Estimated fraction of stream elements <= x. Requires non-empty stream.
  virtual double RankFraction(double x) const = 0;

  /// Number of stream elements processed.
  virtual size_t StreamSize() const = 0;

  /// Number of items currently retained (the space footprint).
  virtual size_t SpaceItems() const = 0;

  /// Algorithm name for reports.
  virtual std::string Name() const = 0;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_QUANTILES_QUANTILE_SKETCH_H_
