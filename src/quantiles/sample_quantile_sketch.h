#ifndef ROBUST_SAMPLING_QUANTILES_SAMPLE_QUANTILE_SKETCH_H_
#define ROBUST_SAMPLING_QUANTILES_SAMPLE_QUANTILE_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reservoir_sampler.h"
#include "quantiles/quantile_sketch.h"

namespace robust_sampling {

/// The paper's robust quantile sketch (Corollary 1.5): maintain a reservoir
/// sample of size k = ceil(2 (ln|U| + ln(2/delta)) / eps^2) and answer all
/// quantile/rank queries from the sample.
///
/// Because the sample is an eps-approximation w.r.t. the prefix family with
/// probability 1 - delta *even against an adaptive adversary that watches
/// the reservoir*, every quantile of the sample is within eps rank error of
/// the corresponding stream quantile, simultaneously for all q.
class SampleQuantileSketch : public QuantileSketch {
 public:
  /// Sketch with an explicit reservoir size k.
  SampleQuantileSketch(size_t k, uint64_t seed);

  /// Sketch sized by Corollary 1.5 for the given accuracy target over a
  /// well-ordered universe of `universe_size` distinct values.
  static SampleQuantileSketch ForAccuracy(double eps, double delta,
                                          uint64_t universe_size,
                                          uint64_t seed);

  void Insert(double x) override;
  double Quantile(double q) const override;
  double RankFraction(double x) const override;
  size_t StreamSize() const override { return reservoir_.stream_size(); }
  size_t SpaceItems() const override { return reservoir_.sample().size(); }
  std::string Name() const override;

  /// Read access to the underlying reservoir (e.g. for adversarial games).
  const ReservoirSampler<double>& reservoir() const { return reservoir_; }

 private:
  ReservoirSampler<double> reservoir_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_QUANTILES_SAMPLE_QUANTILE_SKETCH_H_
