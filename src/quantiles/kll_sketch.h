#ifndef ROBUST_SAMPLING_QUANTILES_KLL_SKETCH_H_
#define ROBUST_SAMPLING_QUANTILES_KLL_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/random.h"
#include "quantiles/quantile_sketch.h"
#include "wire/codec.h"

namespace robust_sampling {

/// KLL streaming quantile sketch (Karnin–Lang–Liberty, FOCS 2016; cited by
/// the paper as [KLL16]).
///
/// A hierarchy of compactors: level h stores items of weight 2^h; when a
/// level overflows, its sorted buffer is halved by keeping every other item
/// (random even/odd offset) and promoting the survivors. Level capacities
/// decay geometrically (ratio 2/3) below the top, giving O((1/eps)
/// sqrt(log 1/delta)) space for eps rank error in the *static* setting.
///
/// Role in this repository: the modern *randomized* comparator for
/// Corollary 1.5. Unlike the deterministic GK summary, KLL's guarantees are
/// probabilistic over its compaction coins — the paper's adversarial model
/// (which reveals internal state) is exactly the regime where such static
/// analyses stop applying, making KLL the natural "state-of-the-art but not
/// adversarially analyzed" reference point in experiment E7.
class KllSketch : public QuantileSketch {
 public:
  /// `k` is the top-level capacity (space/accuracy knob; eps ~ c/k).
  KllSketch(size_t k, uint64_t seed);

  void Insert(double x) override;
  void InsertBatch(std::span<const double> xs) override;

  /// Merges another sketch into this one (mergeable-summaries semantics):
  /// after the call, *this summarizes the concatenation of both input
  /// streams. Buffers are concatenated level-wise and overflowing levels
  /// compact upward; total weight is conserved exactly.
  void Merge(const KllSketch& other);
  double Quantile(double q) const override;
  double RankFraction(double x) const override;
  size_t StreamSize() const override { return n_; }
  size_t SpaceItems() const override;
  std::string Name() const override;

  /// Number of compactor levels currently allocated.
  size_t NumLevels() const { return levels_.size(); }

  /// Wire format (docs/wire.md): k, compaction-RNG words, n and the level
  /// buffers. Restore validates exact weight conservation
  /// (sum_h |level_h| * 2^h == n), so a corrupted blob that still parses
  /// is rejected on this invariant.
  void SerializeTo(wire::ByteSink& sink) const;

  /// Replaces this sketch's state from the wire; false on malformed
  /// input, never aborts.
  bool DeserializeFrom(wire::ByteSource& source);

 private:
  size_t LevelCapacity(size_t level) const;
  void CompactLevel(size_t level);

  size_t k_;
  Rng rng_;
  std::vector<std::vector<double>> levels_;  // levels_[h]: weight-2^h items
  uint64_t n_ = 0;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_QUANTILES_KLL_SKETCH_H_
