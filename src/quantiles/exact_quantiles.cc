#include "quantiles/exact_quantiles.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace robust_sampling {

ExactQuantiles::ExactQuantiles(std::vector<double> data)
    : data_(std::move(data)), dirty_(true) {}

void ExactQuantiles::Insert(double x) {
  data_.push_back(x);
  dirty_ = true;
}

void ExactQuantiles::EnsureSorted() const {
  if (dirty_ || sorted_.size() != data_.size()) {
    sorted_ = data_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
}

double ExactQuantiles::Quantile(double q) const {
  RS_CHECK_MSG(!data_.empty(), "quantile of an empty stream");
  RS_CHECK(q >= 0.0 && q <= 1.0);
  EnsureSorted();
  const double n = static_cast<double>(sorted_.size());
  // Smallest index i (0-based) with (i+1)/n >= q, i.e. i = ceil(q*n) - 1.
  int64_t idx = static_cast<int64_t>(std::ceil(q * n)) - 1;
  idx = std::clamp(idx, int64_t{0},
                   static_cast<int64_t>(sorted_.size()) - 1);
  return sorted_[static_cast<size_t>(idx)];
}

double ExactQuantiles::RankFraction(double x) const {
  RS_CHECK_MSG(!data_.empty(), "rank in an empty stream");
  EnsureSorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double ExactQuantiles::RankError(double q, double estimate) const {
  RS_CHECK_MSG(!data_.empty(), "rank in an empty stream");
  EnsureSorted();
  // The estimate occupies the whole rank interval [F(v-), F(v)] when values
  // tie; its error is the distance from q to that interval.
  const double n = static_cast<double>(sorted_.size());
  const auto lo =
      std::lower_bound(sorted_.begin(), sorted_.end(), estimate);
  const auto hi =
      std::upper_bound(sorted_.begin(), sorted_.end(), estimate);
  const double f_lo = static_cast<double>(lo - sorted_.begin()) / n;
  const double f_hi = static_cast<double>(hi - sorted_.begin()) / n;
  if (q < f_lo) return f_lo - q;
  if (q > f_hi) return q - f_hi;
  return 0.0;
}

}  // namespace robust_sampling
