#include "quantiles/gk_sketch.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace robust_sampling {

GkSketch::GkSketch(double eps) : eps_(eps) {
  RS_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must lie in (0, 1)");
  compress_period_ =
      std::max<uint64_t>(1, static_cast<uint64_t>(1.0 / (2.0 * eps_)));
}

void GkSketch::Insert(double x) {
  ++n_;
  // Position of the first tuple with value > x.
  const auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), x,
      [](double value, const Tuple& t) { return value < t.v; });
  const size_t idx = static_cast<size_t>(it - tuples_.begin());
  uint64_t delta = 0;
  if (idx != 0 && idx != tuples_.size()) {
    // Interior insertion: inherit the local uncertainty budget.
    const double band = 2.0 * eps_ * static_cast<double>(n_);
    delta = band >= 1.0 ? static_cast<uint64_t>(band) - 1 : 0;
  }
  tuples_.insert(it, Tuple{x, 1, delta});
  if (n_ % compress_period_ == 0) Compress();
}

void GkSketch::Compress() {
  if (tuples_.size() < 3) return;
  const uint64_t threshold =
      static_cast<uint64_t>(2.0 * eps_ * static_cast<double>(n_));
  // Merge tuple i into its successor whenever the combined uncertainty
  // stays within the 2*eps*n band. Keep the first tuple so the minimum is
  // always represented exactly.
  for (size_t i = tuples_.size() - 1; i-- > 1;) {
    if (tuples_[i].g + tuples_[i + 1].g + tuples_[i + 1].delta <= threshold) {
      tuples_[i + 1].g += tuples_[i].g;
      tuples_.erase(tuples_.begin() + static_cast<int64_t>(i));
    }
  }
}

double GkSketch::Quantile(double q) const {
  RS_CHECK_MSG(n_ > 0, "quantile of an empty stream");
  RS_CHECK(q >= 0.0 && q <= 1.0);
  const uint64_t r = std::max<uint64_t>(
      1, std::min<uint64_t>(
             n_, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n_)))));
  const double slack = eps_ * static_cast<double>(n_);
  uint64_t rmin = 0;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const uint64_t rmax = rmin + t.delta;
    if (static_cast<double>(r) - static_cast<double>(rmin) <= slack &&
        static_cast<double>(rmax) - static_cast<double>(r) <= slack) {
      return t.v;
    }
  }
  return tuples_.back().v;
}

double GkSketch::RankFraction(double x) const {
  RS_CHECK_MSG(n_ > 0, "rank in an empty stream");
  uint64_t rmin = 0;
  uint64_t best_rmin = 0, best_rmax = 0;
  bool found = false;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    if (t.v <= x) {
      best_rmin = rmin;
      best_rmax = rmin + t.delta;
      found = true;
    } else {
      break;
    }
  }
  if (!found) return 0.0;
  const double mid =
      (static_cast<double>(best_rmin) + static_cast<double>(best_rmax)) / 2.0;
  return mid / static_cast<double>(n_);
}

std::string GkSketch::Name() const {
  return "gk(eps=" + std::to_string(eps_) + ")";
}

}  // namespace robust_sampling
