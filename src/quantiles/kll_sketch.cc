#include "quantiles/kll_sketch.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/check.h"

namespace robust_sampling {

namespace {
constexpr double kCapacityRatio = 2.0 / 3.0;
}  // namespace

KllSketch::KllSketch(size_t k, uint64_t seed) : k_(k), rng_(seed) {
  RS_CHECK_MSG(k >= 4, "KLL needs k >= 4");
  levels_.emplace_back();
}

size_t KllSketch::LevelCapacity(size_t level) const {
  // The top level has capacity k; lower levels decay geometrically.
  const size_t depth = levels_.size() - 1 - level;
  const double cap =
      static_cast<double>(k_) * std::pow(kCapacityRatio, depth);
  return std::max<size_t>(2, static_cast<size_t>(std::ceil(cap)));
}

void KllSketch::Insert(double x) {
  ++n_;
  levels_[0].push_back(x);
  size_t h = 0;
  while (h < levels_.size() && levels_[h].size() >= LevelCapacity(h)) {
    CompactLevel(h);
    ++h;
  }
}

void KllSketch::InsertBatch(std::span<const double> xs) {
  // Devirtualized inner loop: one indirect call per batch, not per element.
  for (double x : xs) KllSketch::Insert(x);
}

void KllSketch::Merge(const KllSketch& other) {
  while (levels_.size() < other.levels_.size()) levels_.emplace_back();
  for (size_t h = 0; h < other.levels_.size(); ++h) {
    levels_[h].insert(levels_[h].end(), other.levels_[h].begin(),
                      other.levels_[h].end());
  }
  n_ += other.n_;
  for (size_t h = 0; h < levels_.size(); ++h) {
    while (levels_[h].size() >= LevelCapacity(h) && levels_[h].size() >= 2) {
      CompactLevel(h);
    }
  }
}

void KllSketch::CompactLevel(size_t level) {
  if (level + 1 == levels_.size()) levels_.emplace_back();
  std::vector<double>& buf = levels_[level];
  std::sort(buf.begin(), buf.end());
  // Compact an even-length prefix; a leftover odd item stays behind so the
  // total weight (= stream length) is preserved exactly.
  const size_t pairs = buf.size() / 2;
  const size_t offset = rng_.NextBelow(2);
  std::vector<double>& up = levels_[level + 1];
  for (size_t i = 0; i < pairs; ++i) {
    up.push_back(buf[2 * i + offset]);
  }
  if (buf.size() % 2 == 1) {
    buf[0] = buf.back();
    buf.resize(1);
  } else {
    buf.clear();
  }
}

size_t KllSketch::SpaceItems() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

double KllSketch::RankFraction(double x) const {
  RS_CHECK_MSG(n_ > 0, "rank in an empty stream");
  double weighted = 0.0;
  for (size_t h = 0; h < levels_.size(); ++h) {
    const double w = std::ldexp(1.0, static_cast<int>(h));
    for (double v : levels_[h]) {
      if (v <= x) weighted += w;
    }
  }
  return weighted / static_cast<double>(n_);
}

double KllSketch::Quantile(double q) const {
  RS_CHECK_MSG(n_ > 0, "quantile of an empty stream");
  RS_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<std::pair<double, double>> weighted;  // (value, weight)
  weighted.reserve(SpaceItems());
  for (size_t h = 0; h < levels_.size(); ++h) {
    const double w = std::ldexp(1.0, static_cast<int>(h));
    for (double v : levels_[h]) weighted.emplace_back(v, w);
  }
  RS_CHECK(!weighted.empty());
  std::sort(weighted.begin(), weighted.end());
  double total = 0.0;
  for (const auto& [v, w] : weighted) total += w;
  const double target = q * total;
  double acc = 0.0;
  for (const auto& [v, w] : weighted) {
    acc += w;
    if (acc >= target) return v;
  }
  return weighted.back().first;
}

void KllSketch::SerializeTo(wire::ByteSink& sink) const {
  wire::PutVarint(sink, k_);
  wire::PutStateWords(sink, rng_.state());
  wire::PutVarint(sink, n_);
  wire::PutVarint(sink, levels_.size());
  for (const auto& level : levels_) {
    wire::PutValueVector<double>(sink, level);
  }
}

bool KllSketch::DeserializeFrom(wire::ByteSource& source) {
  uint64_t k = 0, n = 0, num_levels = 0;
  std::array<uint64_t, 4> rng_words{};
  if (!wire::GetVarint(source, &k) ||
      !wire::GetStateWords(source, &rng_words) ||
      !wire::GetVarint(source, &n) ||
      !wire::GetVarint(source, &num_levels)) {
    return false;
  }
  // 64 levels would summarize a 2^64-element stream; more is corruption.
  if (k < 4 || num_levels < 1 || num_levels > 64 || n >= (uint64_t{1} << 62)) {
    return source.Fail();
  }
  std::vector<std::vector<double>> levels(static_cast<size_t>(num_levels));
  uint64_t weight = 0;
  for (size_t h = 0; h < levels.size(); ++h) {
    if (!wire::GetValueVector(source, &levels[h])) return false;
    const uint64_t level_weight = uint64_t{1} << h;
    if (levels[h].size() > (uint64_t{1} << 62) / level_weight) {
      return source.Fail();
    }
    weight += levels[h].size() * level_weight;
    // Early reject also keeps the running sum from overflowing: each term
    // is < 2^62 and the sum never exceeds n + one term.
    if (weight > n) return source.Fail();
  }
  // Compaction conserves total weight exactly (see CompactLevel); a blob
  // violating it cannot be a real KLL state.
  if (weight != n) return source.Fail();
  k_ = static_cast<size_t>(k);
  rng_.set_state(rng_words);
  n_ = n;
  levels_ = std::move(levels);
  return true;
}

std::string KllSketch::Name() const {
  return "kll(k=" + std::to_string(k_) + ")";
}

}  // namespace robust_sampling
