#include "quantiles/sample_quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/sample_bounds.h"

namespace robust_sampling {

SampleQuantileSketch::SampleQuantileSketch(size_t k, uint64_t seed)
    : reservoir_(k, seed) {}

SampleQuantileSketch SampleQuantileSketch::ForAccuracy(double eps,
                                                       double delta,
                                                       uint64_t universe_size,
                                                       uint64_t seed) {
  return SampleQuantileSketch(QuantileSketchK(eps, delta, universe_size),
                              seed);
}

void SampleQuantileSketch::Insert(double x) { reservoir_.Insert(x); }

double SampleQuantileSketch::Quantile(double q) const {
  RS_CHECK_MSG(reservoir_.stream_size() > 0, "quantile of an empty stream");
  RS_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> s = reservoir_.sample();
  std::sort(s.begin(), s.end());
  const double m = static_cast<double>(s.size());
  int64_t idx = static_cast<int64_t>(std::ceil(q * m)) - 1;
  idx = std::clamp(idx, int64_t{0}, static_cast<int64_t>(s.size()) - 1);
  return s[static_cast<size_t>(idx)];
}

double SampleQuantileSketch::RankFraction(double x) const {
  RS_CHECK_MSG(reservoir_.stream_size() > 0, "rank in an empty stream");
  const std::vector<double>& s = reservoir_.sample();
  size_t count = 0;
  for (double v : s) count += v <= x;
  return static_cast<double>(count) / static_cast<double>(s.size());
}

std::string SampleQuantileSketch::Name() const {
  return "reservoir-sample(k=" + std::to_string(reservoir_.capacity()) + ")";
}

}  // namespace robust_sampling
