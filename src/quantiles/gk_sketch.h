#ifndef ROBUST_SAMPLING_QUANTILES_GK_SKETCH_H_
#define ROBUST_SAMPLING_QUANTILES_GK_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "quantiles/quantile_sketch.h"

namespace robust_sampling {

/// Greenwald–Khanna deterministic eps-approximate quantile summary
/// (SIGMOD 2001; cited by the paper as [GK01]).
///
/// Maintains O((1/eps) log(eps n)) tuples (v, g, delta) where g bounds the
/// rank gap to the previous tuple and delta the rank uncertainty; every
/// rank/quantile answer has additive rank error <= eps*n.
///
/// Role in this repository: the *deterministic baseline* for Corollary 1.5.
/// A deterministic summary's answers are a function of the stream alone, so
/// it is automatically robust against adaptive adversaries (paper Section 1,
/// "Comparison to deterministic sampling algorithms") — at the cost of a
/// more complicated, task-specific algorithm that must inspect every stream
/// element, whereas the robust sample touches only a sublinear subset.
class GkSketch : public QuantileSketch {
 public:
  /// Requires eps in (0, 1).
  explicit GkSketch(double eps);

  void Insert(double x) override;
  double Quantile(double q) const override;
  double RankFraction(double x) const override;
  size_t StreamSize() const override { return n_; }
  size_t SpaceItems() const override { return tuples_.size(); }
  std::string Name() const override;

  double eps() const { return eps_; }

 private:
  /// One summary tuple: value, rank gap to predecessor (g), and rank
  /// uncertainty (delta). rmin_i = sum_{j<=i} g_j; rmax_i = rmin_i + delta_i.
  struct Tuple {
    double v;
    uint64_t g;
    uint64_t delta;
  };

  void Compress();

  double eps_;
  std::vector<Tuple> tuples_;
  uint64_t n_ = 0;
  uint64_t compress_period_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_QUANTILES_GK_SKETCH_H_
