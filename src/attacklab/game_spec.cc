#include "attacklab/game_spec.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/check.h"
#include "core/sample_bounds.h"

namespace robust_sampling {

std::string DescribeGameSpec(const GameSpec& spec) {
  std::string out = DescribeSketchConfig(spec.sketch) + " vs " +
                    spec.adversary + ", n=" + std::to_string(spec.n) +
                    ", eps=" + std::to_string(spec.eps) +
                    ", trials=" + std::to_string(spec.trials);
  if (spec.batch > 0) out += ", batch=" + std::to_string(spec.batch);
  return out;
}

size_t ResolvedCapacity(const SketchConfig& sketch) {
  // "robust_sample" always sizes by Theorem 1.2 — its registry factory
  // ignores `capacity` — so an explicit capacity must be ignored here too
  // or split derivation / schedule anchoring / AnySampler introspection
  // would describe a different sampler than the one actually playing.
  if (sketch.kind != "robust_sample" && sketch.capacity > 0) {
    return sketch.capacity;
  }
  if (sketch.kind == "bernoulli") return 1;
  return ReservoirRobustK(sketch.eps, sketch.delta,
                          EffectiveLogUniverse(sketch));
}

double ResolvedProbability(const SketchConfig& sketch) {
  RS_CHECK_MSG(sketch.kind == "bernoulli",
               "ResolvedProbability is only defined for \"bernoulli\"");
  if (sketch.probability >= 0.0) return sketch.probability;
  return BernoulliRobustP(sketch.eps, sketch.delta,
                          EffectiveLogUniverse(sketch),
                          sketch.expected_stream_size);
}

double DeriveBisectionSplit(const GameSpec& spec) {
  if (spec.split > 0.0) {
    RS_CHECK_MSG(spec.split < 1.0, "split must lie in (0, 1)");
    return spec.split;
  }
  const double n = static_cast<double>(spec.n);
  if (spec.sketch.kind == "bernoulli") {
    const double p = ResolvedProbability(spec.sketch);
    const double p_prime = std::max(p, std::log(n) / n);
    return std::clamp(1.0 - p_prime, 1e-9, 1.0 - 1e-9);
  }
  const double k = static_cast<double>(ResolvedCapacity(spec.sketch));
  // Expected ever-accepted count for a k-reservoir is ~ k (1 + ln(n/k)).
  const double k_accepted = k * (1.0 + std::log(std::max(1.0, n / k)));
  return std::min(1.0 - 1e-6, std::max(0.5, 1.0 - k_accepted / n));
}

CheckpointSchedule BuildSchedule(const GameSpec& spec) {
  switch (spec.schedule) {
    case ScheduleKind::kGeometric: {
      const double beta =
          spec.schedule_beta > 0.0 ? spec.schedule_beta : spec.eps / 4.0;
      size_t first = spec.schedule_first > 0
                         ? spec.schedule_first
                         : std::max<size_t>(1, ResolvedCapacity(spec.sketch));
      first = std::min(first, spec.n);
      return CheckpointSchedule::Geometric(first, spec.n, beta);
    }
    case ScheduleKind::kEvery: {
      const size_t stride = spec.schedule_stride > 0
                                ? spec.schedule_stride
                                : std::max<size_t>(1, spec.n / 20);
      return CheckpointSchedule::Every(stride, spec.n);
    }
    case ScheduleKind::kAll:
      return CheckpointSchedule::All(spec.n);
    case ScheduleKind::kFinalOnly:
      break;
  }
  RS_CHECK_MSG(false, "kFinalOnly has no checkpoint schedule");
  return CheckpointSchedule::All(1);  // unreachable
}

}  // namespace robust_sampling
