#ifndef ROBUST_SAMPLING_ATTACKLAB_GAME_DRIVER_H_
#define ROBUST_SAMPLING_ATTACKLAB_GAME_DRIVER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "attacklab/adversary_registry.h"
#include "attacklab/any_sampler.h"
#include "attacklab/game_spec.h"
#include "core/adversarial_game.h"
#include "core/check.h"
#include "core/random.h"
#include "harness/trial_runner.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {

/// Everything one game trial produced, beyond the headline discrepancy.
struct GameOutcome {
  /// Discrepancy of the final sample vs the full stream (Fig. 1 verdict).
  double final_discrepancy = 0.0;
  /// Max discrepancy over the checkpoint schedule (== final_discrepancy
  /// for ScheduleKind::kFinalOnly).
  double max_discrepancy = 0.0;
  /// Round attaining max_discrepancy (n for kFinalOnly).
  size_t worst_round = 0;
  /// First checked round that violated eps (0 = none; kFinalOnly: n or 0).
  size_t first_violation_round = 0;
  /// Fig. 2 verdict: every checked prefix was an eps-approximation.
  bool continuously_approximating = false;
  size_t sample_size = 0;
  /// Ever-accepted element count k' (Observe calls with kept = true).
  size_t accepted_count = 0;
  /// Whether the adversary drained its move budget (bisection range).
  bool adversary_exhausted = false;
  /// Whether the final sample is exactly the |S| smallest stream elements
  /// — the Claim 5.2 signature of a successful bisection attack.
  bool sample_is_smallest = false;
};

/// Aggregated result of PlayGame: per-trial stats plus resolved names.
struct GameReport {
  std::string sketch_name;     ///< e.g. "reservoir(k=130)".
  std::string adversary_name;  ///< e.g. "bisection-big(split=0.99)".
  /// Primary metric per trial, trial order: max_discrepancy (== final
  /// discrepancy for kFinalOnly games).
  TrialStats discrepancy;
  /// Full per-trial outcomes, trial order.
  std::vector<GameOutcome> outcomes;

  /// Empirical Pr[disc <= eps] — the (eps, delta)-robustness success rate.
  double FractionRobust(double eps) const {
    return discrepancy.FractionAtMost(eps);
  }
  double MeanAcceptedCount() const;
  double FractionExhausted() const;
  double FractionSampleIsSmallest() const;
  double FractionContinuouslyApproximating() const;
};

/// The spec's discrepancy functional, instantiated for element type T.
template <typename T>
DiscrepancyFn<T> MakeDiscrepancyFn(DiscrepancyKind kind) {
  switch (kind) {
    case DiscrepancyKind::kPrefix:
      return [](const std::vector<T>& x, const std::vector<T>& s) {
        return PrefixDiscrepancy(x, s);
      };
    case DiscrepancyKind::kInterval:
      return [](const std::vector<T>& x, const std::vector<T>& s) {
        return IntervalDiscrepancy(x, s);
      };
    case DiscrepancyKind::kSingleton:
      return [](const std::vector<T>& x, const std::vector<T>& s) {
        return SingletonDiscrepancy(x, s);
      };
  }
  RS_CHECK_MSG(false, "unknown discrepancy kind");
  return nullptr;
}

namespace internal {

/// True iff `sample` equals the multiset of the |sample| smallest stream
/// elements (both arguments are consumed and sorted).
template <typename T>
bool SampleIsSmallest(std::vector<T> stream, std::vector<T> sample) {
  if (sample.empty() || sample.size() > stream.size()) return false;
  std::sort(stream.begin(), stream.end());
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < sample.size(); ++i) {
    if (!(sample[i] == stream[i])) return false;
  }
  return true;
}

}  // namespace internal

/// Plays one trial of the spec'd game: a fresh sampler (from
/// SketchRegistry, seeded with `seed`) against a fresh adversary (from
/// AdversaryRegistry, seeded with MixSeed(seed, 1)). The outcome is a pure
/// function of (spec, seed), so trials can run on any thread.
template <typename T>
GameOutcome PlayOne(const GameSpec& spec, uint64_t seed) {
  AnySampler<T> sampler = AnySampler<T>::FromConfig(spec.sketch, seed);
  AnyAdversary<T> adversary =
      AdversaryRegistry<T>::Global().Create(spec, MixSeed(seed, 1));
  const DiscrepancyFn<T> discrepancy =
      MakeDiscrepancyFn<T>(spec.discrepancy);

  GameOutcome out;
  if (spec.schedule == ScheduleKind::kFinalOnly) {
    AdaptiveGameResult<T> r =
        spec.batch > 0
            ? RunBatchedAdaptiveGame<T>(sampler, adversary, spec.n,
                                        spec.batch, discrepancy, spec.eps)
            : RunAdaptiveGame<T>(sampler, adversary, spec.n, discrepancy,
                                 spec.eps);
    out.final_discrepancy = r.discrepancy;
    out.max_discrepancy = r.discrepancy;
    out.worst_round = spec.n;
    out.first_violation_round = r.is_approximation ? 0 : spec.n;
    out.continuously_approximating = r.is_approximation;
    out.sample_size = r.sample.size();
    out.sample_is_smallest =
        internal::SampleIsSmallest(std::move(r.stream), std::move(r.sample));
  } else {
    RS_CHECK_MSG(spec.batch == 0,
                 "batched games support ScheduleKind::kFinalOnly only");
    ContinuousGameResult<T> r = RunContinuousAdaptiveGame<T>(
        sampler, adversary, spec.n, discrepancy, spec.eps,
        BuildSchedule(spec));
    out.final_discrepancy =
        discrepancy(r.stream, r.final_sample);
    out.max_discrepancy = r.max_discrepancy;
    out.worst_round = r.worst_round;
    out.first_violation_round = r.first_violation_round;
    out.continuously_approximating = r.continuously_approximating;
    out.sample_size = r.final_sample.size();
    out.sample_is_smallest = internal::SampleIsSmallest(
        std::move(r.stream), std::move(r.final_sample));
  }
  out.accepted_count = adversary.accepted_count();
  out.adversary_exhausted = adversary.Exhausted();
  return out;
}

/// Plays spec.trials independent games across spec.threads worker threads
/// and aggregates. Trial t is seeded MixSeed(spec.base_seed, t) and lands
/// at values[t] / outcomes[t] whatever thread ran it, so the report —
/// including the raw TrialStats.values — is bit-for-bit identical at every
/// thread count (the RunTrialsParallel determinism contract; asserted by
/// attacklab_test.cc).
template <typename T>
GameReport PlayGame(const GameSpec& spec) {
  RS_CHECK(spec.trials >= 1);
  GameReport report;
  report.outcomes.resize(spec.trials);
  ParallelFor(spec.trials, spec.threads, [&](size_t t) {
    const uint64_t start_ns = obs::NowNanos();
    report.outcomes[t] = PlayOne<T>(spec, MixSeed(spec.base_seed, t));
    obs::AttacklabTrialNs().Observe(obs::NowNanos() - start_ns);
    obs::AttacklabTrials().Increment();
    obs::AttacklabAdversaryAccepted().Increment(
        report.outcomes[t].accepted_count);
  });
  std::vector<double> values(spec.trials);
  for (size_t t = 0; t < spec.trials; ++t) {
    values[t] = report.outcomes[t].max_discrepancy;
  }
  report.discrepancy = AggregateTrialValues(std::move(values));
  report.sketch_name =
      AnySampler<T>::FromConfig(spec.sketch, spec.base_seed).Name();
  report.adversary_name =
      AdversaryRegistry<T>::Global().Create(spec, spec.base_seed).Name();
  return report;
}

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_ATTACKLAB_GAME_DRIVER_H_
