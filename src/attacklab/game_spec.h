#ifndef ROBUST_SAMPLING_ATTACKLAB_GAME_SPEC_H_
#define ROBUST_SAMPLING_ATTACKLAB_GAME_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/checkpoints.h"
#include "pipeline/sketch_config.h"

namespace robust_sampling {

/// Which discrepancy functional scores the game (Definition 1.1's
/// sup_R |d_R(X) - d_R(S)| over the chosen set system; evaluators in
/// setsystem/discrepancy.h).
enum class DiscrepancyKind {
  kPrefix,     ///< one-sided prefixes {x <= b} — the paper's attack target.
  kInterval,   ///< closed intervals [a, b].
  kSingleton,  ///< singletons {v} (heavy-hitter error).
};

/// When the game checks the sample against the stream prefix.
enum class ScheduleKind {
  kFinalOnly,  ///< Fig. 1: one check after round n (RunAdaptiveGame).
  kGeometric,  ///< Fig. 2 with the Theorem 1.4 geometric checkpoints.
  kEvery,      ///< Fig. 2 checked every `schedule_stride` rounds.
  kAll,        ///< Fig. 2 checked after every round (the exact paper game).
};

/// One fully-specified adversarial evaluation: which sampler plays which
/// adversary, at what scale, scored how, repeated how often. GameDriver
/// (attacklab/game_driver.h) turns a GameSpec into a GameReport; both the
/// sampler and the adversary are looked up by string key, so any
/// registered pairing is one assignment away.
struct GameSpec {
  /// The sampler under attack, named and parameterized exactly as for the
  /// ingestion pipeline. Games require an adversary-visible sample, so the
  /// kind's adapter must expose the SampleView capability hook — true of
  /// the built-ins "robust_sample", "reservoir", "bernoulli" and of any
  /// custom kind that implements the hook; see docs/registry.md.
  SketchConfig sketch;

  /// AdversaryRegistry key: built-ins are "bisection", "uniform",
  /// "greedy-gap", "static" (availability depends on the element type; see
  /// attacklab/adversary_registry.h and docs/registry.md).
  std::string adversary = "bisection";

  /// Bisection split parameter (Fig. 3's 1 - p'). <= 0 derives the
  /// near-optimal value from the sampler's parameters via
  /// DeriveBisectionSplit below.
  double split = -1.0;

  /// Stream length n (rounds of the game). Callers should also set
  /// sketch.expected_stream_size = n when the Bernoulli p is derived.
  size_t n = 10'000;

  /// The eps of "is the sample an eps-approximation" — the game's verdict
  /// threshold, independent of sketch.eps (which sizes the sampler).
  double eps = 0.25;

  DiscrepancyKind discrepancy = DiscrepancyKind::kPrefix;

  ScheduleKind schedule = ScheduleKind::kFinalOnly;
  /// Geometric schedule growth factor beta; <= 0 uses the paper's eps/4.
  double schedule_beta = -1.0;
  /// First checkpoint of the geometric schedule; 0 derives it from the
  /// sampler capacity (the Theorem 1.4 proof starts certifying at round k).
  size_t schedule_first = 0;
  /// Stride for ScheduleKind::kEvery; 0 uses max(1, n / 20).
  size_t schedule_stride = 0;

  /// 0 plays the per-element Fig. 1 / Fig. 2 game. > 0 plays the
  /// rate-limited batched game (RunBatchedAdaptiveGame): the adversary
  /// commits `batch` elements per round against frozen state and the
  /// sampler consumes them through its InsertBatch hot path. Batched games
  /// support ScheduleKind::kFinalOnly only.
  size_t batch = 0;

  /// Independent repetitions; trial t re-creates sampler and adversary
  /// from MixSeed(base_seed, t).
  size_t trials = 8;
  uint64_t base_seed = 0xA77AC1AB;

  /// Worker threads for the trial loop (0 = all hardware threads). Results
  /// are identical at every thread count — see RunTrialsParallel.
  size_t threads = 0;
};

/// One-line human-readable description of the pairing, for report headers.
std::string DescribeGameSpec(const GameSpec& spec);

/// The reservoir capacity the spec's sketch resolves to (explicit
/// `capacity`, else the Theorem 1.2 bound ReservoirRobustK at the sketch's
/// eps/delta/ln|R|). Returns 1 for "bernoulli" (no fixed capacity). Used
/// for checkpoint-schedule anchoring and split derivation; mirrors the
/// SketchRegistry factory defaults.
size_t ResolvedCapacity(const SketchConfig& sketch);

/// The sampling probability a "bernoulli" sketch resolves to (explicit
/// `probability`, else Theorem 1.2's BernoulliRobustP for
/// expected_stream_size). Aborts for non-Bernoulli kinds.
double ResolvedProbability(const SketchConfig& sketch);

/// The near-optimal Fig. 3 split for the spec's sampler, spending the
/// ln N range budget evenly over the expected accepted elements:
///   bernoulli: 1 - max(p, ln n / n)            (p' = ln n / n floor),
///   reservoir: 1 - k (1 + ln(n/k)) / n, clamped to [0.5, 1).
/// Returns spec.split unchanged when it is already set (> 0).
double DeriveBisectionSplit(const GameSpec& spec);

/// Materializes the spec's checkpoint schedule. Aborts for kFinalOnly
/// (which has no schedule — RunAdaptiveGame checks once at the end).
CheckpointSchedule BuildSchedule(const GameSpec& spec);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_ATTACKLAB_GAME_SPEC_H_
