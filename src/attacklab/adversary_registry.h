#ifndef ROBUST_SAMPLING_ATTACKLAB_ADVERSARY_REGISTRY_H_
#define ROBUST_SAMPLING_ATTACKLAB_ADVERSARY_REGISTRY_H_

#include <concepts>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "adversary/basic_adversaries.h"
#include "adversary/bisection_adversary.h"
#include "core/adversarial_game.h"
#include "core/big_uint.h"
#include "core/check.h"
#include "core/random.h"
#include "attacklab/game_spec.h"

namespace robust_sampling {

/// Type-erased, value-style handle to one adversary instance.
///
/// AnyAdversary *is* an Adversary<T> (it forwards every call to the wrapped
/// strategy), so it plugs straight into RunAdaptiveGame /
/// RunContinuousAdaptiveGame / RunBatchedAdaptiveGame. On top of
/// forwarding it keeps the game-side bookkeeping every experiment wants:
///
///  * accepted_count() — the number of Observe calls with kept = true.
///    In the per-element game this is exactly k', the ever-accepted count
///    of Theorem 1.3's analysis; in the batched game it counts rounds
///    whose final element was kept.
///  * Exhausted() — forwarded from the strategy (bisection range drained).
///
/// Move-only; create via Wrap() or AdversaryRegistry::Create.
template <typename T>
class AnyAdversary final : public Adversary<T> {
 public:
  explicit AnyAdversary(std::unique_ptr<Adversary<T>> impl)
      : impl_(std::move(impl)) {
    RS_CHECK_MSG(impl_ != nullptr, "null adversary");
  }

  /// Moves a concrete strategy onto the heap and wraps it.
  template <typename A>
    requires std::derived_from<A, Adversary<T>>
  static AnyAdversary Wrap(A adversary) {
    return AnyAdversary(std::make_unique<A>(std::move(adversary)));
  }

  AnyAdversary(AnyAdversary&&) noexcept = default;
  AnyAdversary& operator=(AnyAdversary&&) noexcept = default;

  T NextElement(std::span<const T> sample_before, size_t round) override {
    return impl_->NextElement(sample_before, round);
  }

  void Observe(std::span<const T> sample_after, bool kept,
               size_t round) override {
    accepted_count_ += kept;
    impl_->Observe(sample_after, kept, round);
  }

  std::string Name() const override { return impl_->Name(); }
  bool Exhausted() const override { return impl_->Exhausted(); }

  /// Observe calls with kept = true so far (k' in the per-element game).
  size_t accepted_count() const { return accepted_count_; }

  /// The wrapped strategy (for strategy-specific inspection in tests).
  Adversary<T>& impl() { return *impl_; }

 private:
  std::unique_ptr<Adversary<T>> impl_;
  size_t accepted_count_ = 0;
};

/// String-keyed factory registry for adversary strategies — the attack-side
/// mirror of SketchRegistry. Factories receive the full GameSpec (so the
/// bisection attack can derive its split from the sampler it is facing)
/// plus a per-instance seed.
///
/// Built-in keys and the element types they support:
///
///   "bisection"   int64_t (universe {1..sketch.universe_size}),
///                 double (universe [0, 1)),
///                 BigUint (universe {1..floor(e^ln N)}, ln N =
///                 EffectiveLogUniverse(spec.sketch) — Theorem 1.3 scale).
///                 split: spec.split, or DeriveBisectionSplit(spec).
///   "uniform"     int64_t: i.i.d. uniform over {1..universe_size} (the
///                 benign oblivious baseline).
///   "greedy-gap"  int64_t / double: single-range greedy state-feedback
///                 strategy targeting the lower half of the universe.
///   "static"      int64_t: a stream fixed before the game — i.i.d.
///                 uniform draws materialized up front (universe_size = 1
///                 gives the constant stream used by the Bernoulli
///                 continuous-impossibility experiment). The classical
///                 non-adaptive setting.
///
/// `Global()` returns the process-wide registry for element type T;
/// `Register` adds custom strategies at runtime. Thread-safety matches
/// SketchRegistry: creation is thread-safe, registration is serialized
/// with creation by a mutex.
template <typename T>
class AdversaryRegistry {
 public:
  using Factory =
      std::function<AnyAdversary<T>(const GameSpec&, uint64_t)>;

  /// The process-wide registry for element type T.
  static AdversaryRegistry& Global() {
    static AdversaryRegistry* registry = new AdversaryRegistry(BuiltinsTag{});
    return *registry;
  }

  /// An empty registry (no built-ins); mainly for tests.
  AdversaryRegistry() = default;

  /// Registers a new strategy. Aborts on duplicate keys / empty factories.
  void Register(const std::string& kind, Factory factory) {
    RS_CHECK_MSG(static_cast<bool>(factory), "null adversary factory");
    std::lock_guard<std::mutex> lock(mu_);
    const bool inserted = factories_.emplace(kind, std::move(factory)).second;
    RS_CHECK_MSG(inserted, "duplicate adversary kind registration");
  }

  bool Contains(const std::string& kind) const {
    std::lock_guard<std::mutex> lock(mu_);
    return factories_.count(kind) > 0;
  }

  /// All registered kinds, sorted.
  std::vector<std::string> Kinds() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [kind, factory] : factories_) out.push_back(kind);
    return out;
  }

  /// Instantiates `spec.adversary` for this game, seeded with
  /// `instance_seed` (fresh per trial). Aborts on unknown kinds.
  AnyAdversary<T> Create(const GameSpec& spec, uint64_t instance_seed) const {
    Factory factory;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = factories_.find(spec.adversary);
      RS_CHECK_MSG(it != factories_.end(), "unknown adversary kind");
      factory = it->second;
    }
    return factory(spec, instance_seed);
  }

 private:
  struct BuiltinsTag {};

  explicit AdversaryRegistry(BuiltinsTag) {
    // "bisection" exists only for the element types with a bisection
    // domain; other element types (e.g. custom structs playing through
    // custom adversaries) still get a working registry with whatever the
    // application registers — a Global() instantiation must never fail to
    // compile just because a built-in does not generalize.
    if constexpr (std::is_same_v<T, int64_t> || std::is_same_v<T, double> ||
                  std::is_same_v<T, BigUint>) {
      Register("bisection", [](const GameSpec& spec, uint64_t) {
        const double split = DeriveBisectionSplit(spec);
        if constexpr (std::is_same_v<T, int64_t>) {
          return AnyAdversary<T>::Wrap(BisectionAdversaryInt64(
              static_cast<int64_t>(spec.sketch.universe_size), split));
        } else if constexpr (std::is_same_v<T, double>) {
          return AnyAdversary<T>::Wrap(
              BisectionAdversaryDouble(0.0, 1.0, split));
        } else {
          return AnyAdversary<T>::Wrap(BisectionAdversaryBig(
              BigUint::ApproxExp(EffectiveLogUniverse(spec.sketch)),
              split));
        }
      });
    }
    if constexpr (std::is_same_v<T, int64_t>) {
      Register("uniform", [](const GameSpec& spec, uint64_t seed) {
        return AnyAdversary<T>::Wrap(UniformAdversary(
            static_cast<int64_t>(spec.sketch.universe_size), seed));
      });
      Register("greedy-gap", [](const GameSpec& spec, uint64_t) {
        const int64_t universe =
            static_cast<int64_t>(spec.sketch.universe_size);
        const int64_t half = universe / 2;
        return AnyAdversary<T>::Wrap(GreedyGapAdversary<int64_t>(
            [half](const int64_t& x) { return x <= half; },
            /*in_exemplar=*/1, /*out_exemplar=*/universe));
      });
      Register("static", [](const GameSpec& spec, uint64_t seed) {
        Rng rng(seed);
        std::vector<int64_t> stream(spec.n);
        for (auto& x : stream) {
          x = static_cast<int64_t>(
                  rng.NextBelow(spec.sketch.universe_size)) +
              1;
        }
        return AnyAdversary<T>::Wrap(
            StaticAdversary<int64_t>(std::move(stream)));
      });
    }
    if constexpr (std::is_same_v<T, double>) {
      Register("greedy-gap", [](const GameSpec&, uint64_t) {
        return AnyAdversary<T>::Wrap(GreedyGapAdversary<double>(
            [](const double& x) { return x <= 0.5; },
            /*in_exemplar=*/0.25, /*out_exemplar=*/0.75));
      });
    }
  }

  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_ATTACKLAB_ADVERSARY_REGISTRY_H_
