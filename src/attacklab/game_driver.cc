#include "attacklab/game_driver.h"

namespace robust_sampling {
namespace {

template <typename Pred>
double Fraction(const std::vector<GameOutcome>& outcomes, Pred pred) {
  if (outcomes.empty()) return 0.0;
  size_t count = 0;
  for (const GameOutcome& o : outcomes) count += pred(o);
  return static_cast<double>(count) / static_cast<double>(outcomes.size());
}

}  // namespace

double GameReport::MeanAcceptedCount() const {
  if (outcomes.empty()) return 0.0;
  double sum = 0.0;
  for (const GameOutcome& o : outcomes) {
    sum += static_cast<double>(o.accepted_count);
  }
  return sum / static_cast<double>(outcomes.size());
}

double GameReport::FractionExhausted() const {
  return Fraction(outcomes,
                  [](const GameOutcome& o) { return o.adversary_exhausted; });
}

double GameReport::FractionSampleIsSmallest() const {
  return Fraction(outcomes,
                  [](const GameOutcome& o) { return o.sample_is_smallest; });
}

double GameReport::FractionContinuouslyApproximating() const {
  return Fraction(outcomes, [](const GameOutcome& o) {
    return o.continuously_approximating;
  });
}

}  // namespace robust_sampling
