#ifndef ROBUST_SAMPLING_ATTACKLAB_ANY_SAMPLER_H_
#define ROBUST_SAMPLING_ATTACKLAB_ANY_SAMPLER_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "attacklab/game_spec.h"
#include "core/check.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"

namespace robust_sampling {

/// A type-erased sampler that satisfies BatchStreamSampler<AnySampler<T>, T>
/// — the glue between the string-keyed SketchRegistry and the adversarial
/// game runners.
///
/// The adaptive game of Section 2 requires the adversary to observe the
/// full sample after every insertion, so a sketch kind can play iff it
/// exposes the kCapSampleView capability (StreamSketch<T>::SampleView()).
/// Every call on the StreamSampler surface routes through that erased hook
/// — no downcasts, no per-kind view binding — so *any* registered kind
/// with a sample-view hook on its adapter plays games, including custom
/// registry kinds with their own adapter types. FromConfig instantiates
/// through SketchRegistry<T>::Global() — the same code path the sharded
/// pipeline uses — and aborts with a clear message for sample-free kinds
/// (kll, count_min, ...).
template <typename T>
class AnySampler {
 public:
  /// Creates `config.kind` from the global registry, seeded with
  /// `instance_seed` (fresh per game trial).
  static AnySampler FromConfig(const SketchConfig& config,
                               uint64_t instance_seed) {
    AnySampler s(SketchRegistry<T>::Global().Create(config, instance_seed));
    // Mirror the built-in factories' sizing so introspection reports the
    // resolved parameters without reaching into concrete types. Custom
    // kinds size themselves however their factory likes, so their
    // capacity/probability read as unknown (0 / NaN), like FromSketch.
    if (config.kind == "bernoulli") {
      s.probability_ = ResolvedProbability(config);
    } else if (config.kind == "robust_sample" || config.kind == "reservoir") {
      s.capacity_ = ResolvedCapacity(config);
    }
    return s;
  }

  /// Wraps an already-created StreamSketch (e.g. a custom registry kind).
  /// capacity()/probability() read as unknown (0 / NaN) on this path.
  static AnySampler FromSketch(StreamSketch<T> sketch) {
    return AnySampler(std::move(sketch));
  }

  // --- StreamSampler surface (core/sampler.h) -----------------------------

  void Insert(const T& x) { sketch_.Insert(x); }
  void InsertBatch(std::span<const T> xs) { sketch_.InsertBatch(xs); }

  std::span<const T> sample() const { return sketch_.SampleView().elements; }

  size_t stream_size() const { return sketch_.StreamSize(); }

  bool last_kept() const { return sketch_.SampleView().last_kept; }

  // --- Introspection ------------------------------------------------------

  /// Algorithm name with resolved parameters, e.g. "reservoir(k=130)".
  std::string Name() const { return sketch_.Name(); }

  /// Reservoir-style capacity the config resolved to; 0 for Bernoulli
  /// (unbounded sample), for custom kinds, and for FromSketch handles.
  size_t capacity() const { return capacity_; }

  /// Bernoulli sampling probability; NaN for reservoir-style samplers.
  double probability() const { return probability_; }

  /// The underlying type-erased sketch (for pipeline interop and queries
  /// beyond the sampler surface: Quantile, HeavyHitters, ...).
  StreamSketch<T>& sketch() { return sketch_; }
  const StreamSketch<T>& sketch() const { return sketch_; }

 private:
  explicit AnySampler(StreamSketch<T> sketch) : sketch_(std::move(sketch)) {
    RS_CHECK_MSG(sketch_.Supports(kCapSampleView),
                 "sketch kind has no adversary-visible sample view; games "
                 "need the kCapSampleView capability (built-ins: "
                 "robust_sample / reservoir / bernoulli)");
  }

  StreamSketch<T> sketch_;
  size_t capacity_ = 0;
  double probability_ = std::nan("");
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_ATTACKLAB_ANY_SAMPLER_H_
