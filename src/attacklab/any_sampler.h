#ifndef ROBUST_SAMPLING_ATTACKLAB_ANY_SAMPLER_H_
#define ROBUST_SAMPLING_ATTACKLAB_ANY_SAMPLER_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/check.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"

namespace robust_sampling {

/// A type-erased sampler that satisfies BatchStreamSampler<AnySampler<T>, T>
/// — the glue between the string-keyed SketchRegistry and the adversarial
/// game runners.
///
/// The adaptive game of Section 2 requires the adversary to observe the
/// full sample after every insertion, so only sketch kinds that *have* an
/// adversary-visible sample can play: the built-ins "robust_sample",
/// "reservoir" and "bernoulli" (plus any custom registry kind that wraps
/// one of those adapters). FromConfig instantiates through
/// SketchRegistry<T>::Global() — the same code path the sharded pipeline
/// uses — then binds typed views onto the wrapped adapter; it aborts with
/// a clear message for sample-free kinds (kll, count_min, ...).
///
/// Copyable (deep-copies the underlying sketch) and movable; both rebind
/// the views, so handles stay self-contained.
template <typename T>
class AnySampler {
 public:
  /// Creates `config.kind` from the global registry, seeded with
  /// `instance_seed` (fresh per game trial).
  static AnySampler FromConfig(const SketchConfig& config,
                               uint64_t instance_seed) {
    AnySampler s;
    s.sketch_ = SketchRegistry<T>::Global().Create(config, instance_seed);
    s.BindViews();
    return s;
  }

  /// Wraps an already-created StreamSketch (e.g. a custom registry kind).
  static AnySampler FromSketch(StreamSketch<T> sketch) {
    AnySampler s;
    s.sketch_ = std::move(sketch);
    s.BindViews();
    return s;
  }

  AnySampler(const AnySampler& other) : sketch_(other.sketch_) {
    BindViews();
  }
  AnySampler& operator=(const AnySampler& other) {
    if (this != &other) {
      sketch_ = other.sketch_;
      BindViews();
    }
    return *this;
  }
  // Moving a StreamSketch moves its heap-allocated model, so the adapter
  // views stay valid across moves.
  AnySampler(AnySampler&&) noexcept = default;
  AnySampler& operator=(AnySampler&&) noexcept = default;

  // --- StreamSampler surface (core/sampler.h) -----------------------------

  void Insert(const T& x) { sketch_.Insert(x); }
  void InsertBatch(std::span<const T> xs) { sketch_.InsertBatch(xs); }

  const std::vector<T>& sample() const {
    if (robust_) return robust_->sketch().sample();
    if (reservoir_) return reservoir_->sketch().sample();
    return bernoulli_->sketch().sample();
  }

  size_t stream_size() const { return sketch_.StreamSize(); }

  bool last_kept() const {
    if (robust_) return robust_->sketch().last_kept();
    if (reservoir_) return reservoir_->sketch().last_kept();
    return bernoulli_->sketch().last_kept();
  }

  // --- Introspection ------------------------------------------------------

  /// Algorithm name with resolved parameters, e.g. "reservoir(k=130)".
  std::string Name() const { return sketch_.Name(); }

  /// Reservoir-style capacity; 0 for Bernoulli (unbounded sample).
  size_t capacity() const {
    if (robust_) return robust_->sketch().capacity();
    if (reservoir_) return reservoir_->sketch().capacity();
    return 0;
  }

  /// Bernoulli sampling probability; NaN for reservoir-style samplers.
  double probability() const {
    if (bernoulli_) return bernoulli_->sketch().p();
    return std::nan("");
  }

  /// The underlying type-erased sketch (for pipeline interop).
  StreamSketch<T>& sketch() { return sketch_; }
  const StreamSketch<T>& sketch() const { return sketch_; }

 private:
  AnySampler() = default;

  void BindViews() {
    robust_ = sketch_.template TryAs<RobustSampleAdapter<T>>();
    reservoir_ = sketch_.template TryAs<ReservoirAdapter<T>>();
    bernoulli_ = sketch_.template TryAs<BernoulliAdapter<T>>();
    RS_CHECK_MSG(robust_ || reservoir_ || bernoulli_,
                 "sketch kind has no adversary-visible sample; games need "
                 "robust_sample / reservoir / bernoulli");
  }

  StreamSketch<T> sketch_;
  RobustSampleAdapter<T>* robust_ = nullptr;
  ReservoirAdapter<T>* reservoir_ = nullptr;
  BernoulliAdapter<T>* bernoulli_ = nullptr;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_ATTACKLAB_ANY_SAMPLER_H_
