// Experiment E9 (Section 1.2, range queries): sample-based box counting
// over [1..m]^d. The robust sample size is O((d ln m + ln 1/delta)/eps^2)
// (ln|R| = d ln(m(m+1)/2)); every box query must be answered within
// additive error eps*n. Workloads: uniform points and an adaptive
// "corner-stuffing" adversary that watches the sample density of a target
// box and pads the stream to widen the gap.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/random.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "geometry/range_counting.h"
#include "harness/table.h"
#include "harness/trial_runner.h"
#include "setsystem/rectangle_family.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.1;
constexpr double kDelta = 0.1;
constexpr int64_t kGrid = 64;
constexpr size_t kN = 50000;
constexpr size_t kQueries = 200;
constexpr size_t kTrials = 4;

Point RandomGridPoint(int dims, Rng& rng) {
  Point p(dims);
  for (int j = 0; j < dims; ++j) {
    p[j] = static_cast<double>(rng.NextBelow(kGrid)) + 1.0;
  }
  return p;
}

// Max (over kQueries random boxes) normalized count error.
double MaxQueryError(const std::vector<Point>& stream,
                     const SampleRangeCounter& counter,
                     const RectangleFamily& family, uint64_t seed) {
  Rng rng(seed);
  double worst = 0.0;
  for (size_t q = 0; q < kQueries; ++q) {
    const auto box = family.RangeBox(rng.NextBelow(family.NumRanges()));
    const double exact = static_cast<double>(ExactBoxCount(stream, box));
    const double est = counter.EstimateCount(box);
    worst = std::max(worst,
                     std::abs(est - exact) / static_cast<double>(kN));
  }
  return worst;
}

double TrialUniform(int dims, size_t k, uint64_t seed) {
  RectangleFamily family(kGrid, dims);
  SampleRangeCounter counter(k, seed);
  const auto stream = UniformPointStream(
      kN, dims, 1.0, static_cast<double>(kGrid) + 1.0, MixSeed(seed, 31));
  for (const Point& p : stream) counter.Insert(p);
  return MaxQueryError(stream, counter, family, MixSeed(seed, 37));
}

double TrialAdaptive(int dims, size_t k, uint64_t seed) {
  RectangleFamily family(kGrid, dims);
  SampleRangeCounter counter(k, seed);
  Rng rng(MixSeed(seed, 41));
  // Target box: the low-corner quadrant.
  RectangleFamily::Box target;
  target.lo.assign(dims, 1);
  target.hi.assign(dims, kGrid / 4);
  std::vector<Point> stream;
  stream.reserve(kN);
  size_t in_target_stream = 0;
  Point inside(dims, 2.0), outside(dims, static_cast<double>(kGrid));
  for (size_t i = 0; i < kN; ++i) {
    Point p;
    if (i % 2 == 0) {
      p = RandomGridPoint(dims, rng);
    } else {
      // Greedy gap on the target box, adapting to the sample.
      const double d_sample = counter.EstimateDensity(target);
      const double d_stream =
          i == 0 ? 0.0
                 : static_cast<double>(in_target_stream) /
                       static_cast<double>(i);
      p = (d_sample - d_stream >= 0.0) ? outside : inside;
    }
    in_target_stream += target.Contains(p);
    counter.Insert(p);
    stream.push_back(std::move(p));
  }
  return MaxQueryError(stream, counter, family, MixSeed(seed, 43));
}

void Run() {
  std::cout << "# E9: robust range queries over [1.." << kGrid
            << "]^d (Section 1.2)\n";
  std::cout << "n = " << kN << ", eps = " << kEps << ", delta = " << kDelta
            << ", " << kQueries << " random box queries/trial, " << kTrials
            << " trials/row\n\n";
  MarkdownTable table({"d", "ln|R|", "Thm 1.2 k", "workload",
                       "mean max err/n", "worst max err/n",
                       "meets eps"});
  for (int dims : {1, 2, 3}) {
    RectangleFamily family(kGrid, dims);
    const size_t k = ReservoirRobustK(kEps, kDelta, family.LogCardinality());
    for (int workload = 0; workload < 2; ++workload) {
      const auto stats = RunTrials(kTrials, 0xE9, [&](uint64_t seed) {
        return workload == 0 ? TrialUniform(dims, k, seed)
                             : TrialAdaptive(dims, k, seed);
      });
      table.AddRow({std::to_string(dims),
                    FormatDouble(family.LogCardinality(), 1),
                    std::to_string(k),
                    workload == 0 ? "uniform" : "adaptive corner-stuffing",
                    FormatDouble(stats.mean, 4), FormatDouble(stats.max, 4),
                    FormatBool(stats.max <= kEps)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nShape check: every row's worst normalized error stays "
               "below eps; the required k grows linearly in d (ln|R| = "
               "d ln(m(m+1)/2)), matching the paper's O(d ln m / eps^2).\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
