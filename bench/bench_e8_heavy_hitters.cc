// Experiment E8 (Corollary 1.6): robust heavy hitters. Zipfian background
// traffic with an adaptive frequency-gap adversary targeting one element;
// the (alpha, eps) contract (recall every >= alpha element, report nothing
// <= alpha - eps) is checked for the sampled estimator (Cor. 1.6), the
// deterministic Misra-Gries and SpaceSaving baselines, and CountMin.
// CountMin is additionally subjected to the Hardt–Woodruff-style adaptive
// collision-stuffing attack, which manufactures a false positive.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <set>
#include <vector>

#include "adversary/basic_adversaries.h"
#include "core/random.h"
#include "core/sample_bounds.h"
#include "harness/table.h"
#include "harness/trial_runner.h"
#include "heavy/count_min.h"
#include "heavy/exact_counter.h"
#include "heavy/misra_gries.h"
#include "heavy/sample_heavy_hitters.h"
#include "heavy/space_saving.h"
#include "stream/zipf.h"

namespace robust_sampling {
namespace {

constexpr double kAlpha = 0.10;
constexpr double kEps = 0.09;
constexpr double kDelta = 0.1;
constexpr int64_t kUniverse = 100000;
constexpr size_t kN = 100000;
constexpr size_t kTrials = 5;

struct ContractResult {
  bool recall_ok;     // every f >= alpha element reported
  bool precision_ok;  // nothing with f <= alpha - eps reported
};

// Adaptive stream: Zipf background, but every 4th element is chosen by a
// greedy gap strategy that watches the estimator's current estimate of a
// target element and pads the stream to widen |est - truth|.
ContractResult RunContract(FrequencyEstimator* est, uint64_t seed) {
  ZipfDistribution zipf(kUniverse, 1.1);
  Rng rng(seed);
  ExactCounter exact;
  const int64_t target = 3;  // a borderline-heavy Zipf element
  for (size_t i = 0; i < kN; ++i) {
    int64_t x;
    if (i % 4 == 3) {
      const double gap =
          est->EstimateFrequency(target) - exact.EstimateFrequency(target);
      // Over-estimated -> starve the target; under-estimated -> feed it.
      x = gap >= 0 ? static_cast<int64_t>(rng.NextBelow(kUniverse)) + 1
                   : target;
    } else {
      x = zipf.Sample(rng);
    }
    est->Insert(x);
    exact.Insert(x);
  }
  // Evaluate the (alpha, eps) contract against exact frequencies.
  const auto reported = est->HeavyHitters(kAlpha - kEps / 3.0);
  std::set<int64_t> reported_set;
  for (const auto& h : reported) reported_set.insert(h.element);
  ContractResult result{true, true};
  for (const auto& h : exact.HeavyHitters(kAlpha)) {
    if (!reported_set.count(h.element)) result.recall_ok = false;
  }
  for (int64_t e : reported_set) {
    if (exact.EstimateFrequency(e) <= kAlpha - kEps) {
      result.precision_ok = false;
    }
  }
  return result;
}

void Run() {
  const size_t k_sample = HeavyHitterK(kEps, kDelta, kUniverse);
  std::cout << "# E8: robust heavy hitters under adaptive traffic "
               "(Corollary 1.6)\n";
  std::cout << "n = " << kN << ", |U| = " << kUniverse
            << ", alpha = " << kAlpha << ", eps = " << kEps
            << ", Cor. 1.6 reservoir k = " << k_sample << ", " << kTrials
            << " trials/row\n\n";
  MarkdownTable table(
      {"algorithm", "space", "recall ok", "precision ok"});
  struct Def {
    const char* name;
    int kind;  // 0 sample, 1 mg, 2 ss, 3 cm
  };
  const Def defs[] = {{"reservoir sample (Cor 1.6)", 0},
                      {"misra-gries (k=100)", 1},
                      {"space-saving (k=100)", 2},
                      {"count-min (2048x4)", 3}};
  for (const auto& def : defs) {
    size_t space = 0;
    double recall = 0.0, precision = 0.0;
    for (size_t t = 0; t < kTrials; ++t) {
      std::unique_ptr<FrequencyEstimator> est;
      const uint64_t seed = MixSeed(0xE8, t);
      switch (def.kind) {
        case 0:
          est = std::make_unique<SampleHeavyHitters>(k_sample,
                                                     MixSeed(seed, 1));
          break;
        case 1:
          est = std::make_unique<MisraGries>(100);
          break;
        case 2:
          est = std::make_unique<SpaceSaving>(100);
          break;
        default:
          est = std::make_unique<CountMinSketch>(2048, 4, MixSeed(seed, 2));
      }
      const auto r = RunContract(est.get(), seed);
      recall += r.recall_ok;
      precision += r.precision_ok;
      space = est->SpaceItems();
    }
    table.AddRow({def.name, std::to_string(space),
                  FormatDouble(recall / kTrials, 2),
                  FormatDouble(precision / kTrials, 2)});
  }
  table.Print(std::cout);

  // CountMin under the adaptive collision-stuffing attack.
  std::cout << "\n## CountMin under adaptive collision stuffing "
               "(Hardt–Woodruff-style, cf. paper intro [HW13])\n\n";
  MarkdownTable cm_table({"width x depth", "target est. freq (never sent)",
                          "false positive at alpha"});
  for (size_t width : {size_t{32}, size_t{128}, size_t{512}}) {
    CountMinSketch cm(width, 2, 0xC30 + width);
    const int64_t target = 7;
    std::vector<int64_t> colliders;
    for (int64_t x = 1000;
         colliders.size() < 12 && x < 50000000; ++x) {
      bool all = true;
      for (size_t r = 0; r < cm.depth(); ++r) {
        if (cm.Bucket(r, x) != cm.Bucket(r, target)) {
          all = false;
          break;
        }
      }
      if (all) colliders.push_back(x);
    }
    for (int round = 0; round < 100 && !colliders.empty(); ++round) {
      for (int64_t c : colliders) cm.Insert(c);
    }
    const double est = cm.EstimateFrequency(target);
    cm_table.AddRow({std::to_string(width) + "x2", FormatDouble(est, 3),
                     FormatBool(est >= kAlpha)});
  }
  cm_table.Print(std::cout);
  std::cout << "\nShape check: the sampled estimator and the deterministic "
               "baselines keep both recall and precision at 1.00 under the "
               "adaptive stream; CountMin's estimate for a never-inserted "
               "target is driven above alpha by an adaptive adversary that "
               "exploits its linear structure.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
