// Experiment E8 (Corollary 1.6): robust heavy hitters. Zipfian background
// traffic with an adaptive frequency-gap adversary targeting one element;
// the (alpha, eps) contract (recall every >= alpha element, report nothing
// <= alpha - eps) is checked for the sampled estimator (Cor. 1.6), the
// deterministic Misra-Gries and SpaceSaving baselines, and CountMin.
// CountMin is additionally subjected to the Hardt–Woodruff-style adaptive
// collision-stuffing attack, which manufactures a false positive.
//
// All four contract rows are created from SketchRegistry<int64_t> and
// driven purely through the erased StreamSketch query surface
// (EstimateFrequency / HeavyHitters) — the sampled estimator is simply the
// "reservoir" kind, whose sample answers frequency queries by Cor. 1.6.
// The collision-stuffing section stays on the concrete CountMinSketch: the
// attack exploits sketch *internals* (row/bucket structure), which is
// exactly what the erased surface does not expose.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <set>
#include <vector>

#include "core/random.h"
#include "core/sample_bounds.h"
#include "harness/table.h"
#include "harness/trial_runner.h"
#include "heavy/count_min.h"
#include "heavy/exact_counter.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "stream/zipf.h"

namespace robust_sampling {
namespace {

constexpr double kAlpha = 0.10;
constexpr double kEps = 0.09;
constexpr double kDelta = 0.1;
constexpr int64_t kUniverse = 100000;
constexpr size_t kN = 100000;
constexpr size_t kTrials = 5;

struct ContractResult {
  bool recall_ok;     // every f >= alpha element reported
  bool precision_ok;  // nothing with f <= alpha - eps reported
};

// Adaptive stream: Zipf background, but every 4th element is chosen by a
// greedy gap strategy that watches the estimator's current estimate of a
// target element and pads the stream to widen |est - truth|.
ContractResult RunContract(StreamSketch<int64_t>& est, uint64_t seed) {
  ZipfDistribution zipf(kUniverse, 1.1);
  Rng rng(seed);
  ExactCounter exact;
  const int64_t target = 3;  // a borderline-heavy Zipf element
  for (size_t i = 0; i < kN; ++i) {
    int64_t x;
    if (i % 4 == 3) {
      const double gap =
          est.EstimateFrequency(target) - exact.EstimateFrequency(target);
      // Over-estimated -> starve the target; under-estimated -> feed it.
      x = gap >= 0 ? static_cast<int64_t>(rng.NextBelow(kUniverse)) + 1
                   : target;
    } else {
      x = zipf.Sample(rng);
    }
    est.Insert(x);
    exact.Insert(x);
  }
  // Evaluate the (alpha, eps) contract against exact frequencies.
  const auto reported = est.HeavyHitters(kAlpha - kEps / 3.0);
  std::set<int64_t> reported_set;
  for (const auto& h : reported) reported_set.insert(h.element);
  ContractResult result{true, true};
  for (const auto& h : exact.HeavyHitters(kAlpha)) {
    if (!reported_set.count(h.element)) result.recall_ok = false;
  }
  for (int64_t e : reported_set) {
    if (exact.EstimateFrequency(e) <= kAlpha - kEps) {
      result.precision_ok = false;
    }
  }
  return result;
}

void Run() {
  const size_t k_sample = HeavyHitterK(kEps, kDelta, kUniverse);
  std::cout << "# E8: robust heavy hitters under adaptive traffic "
               "(Corollary 1.6)\n";
  std::cout << "n = " << kN << ", |U| = " << kUniverse
            << ", alpha = " << kAlpha << ", eps = " << kEps
            << ", Cor. 1.6 reservoir k = " << k_sample << ", " << kTrials
            << " trials/row; all estimators driven through the erased "
               "registry surface\n\n";
  MarkdownTable table(
      {"algorithm", "space", "recall ok", "precision ok"});
  struct Def {
    const char* name;
    SketchConfig config;
  };
  std::vector<Def> defs(4);
  defs[0].name = "reservoir sample (Cor 1.6)";
  defs[0].config.kind = "reservoir";
  defs[0].config.capacity = k_sample;
  defs[1].name = "misra-gries (k=100)";
  defs[1].config.kind = "misra_gries";
  defs[1].config.capacity = 100;
  defs[2].name = "space-saving (k=100)";
  defs[2].config.kind = "space_saving";
  defs[2].config.capacity = 100;
  defs[3].name = "count-min (2048x4)";
  defs[3].config.kind = "count_min";
  defs[3].config.width = 2048;
  defs[3].config.depth = 4;
  for (auto& def : defs) {
    size_t space = 0;
    double recall = 0.0, precision = 0.0;
    for (size_t t = 0; t < kTrials; ++t) {
      const uint64_t seed = MixSeed(0xE8, t);
      def.config.seed = MixSeed(seed, 2);  // CountMin row hashes per trial
      StreamSketch<int64_t> est =
          SketchRegistry<int64_t>::Global().Create(def.config,
                                                   MixSeed(seed, 1));
      const auto r = RunContract(est, seed);
      recall += r.recall_ok;
      precision += r.precision_ok;
      space = est.SpaceItems();
    }
    table.AddRow({def.name, std::to_string(space),
                  FormatDouble(recall / kTrials, 2),
                  FormatDouble(precision / kTrials, 2)});
  }
  table.Print(std::cout);

  // CountMin under the adaptive collision-stuffing attack.
  std::cout << "\n## CountMin under adaptive collision stuffing "
               "(Hardt–Woodruff-style, cf. paper intro [HW13])\n\n";
  MarkdownTable cm_table({"width x depth", "target est. freq (never sent)",
                          "false positive at alpha"});
  for (size_t width : {size_t{32}, size_t{128}, size_t{512}}) {
    CountMinSketch cm(width, 2, 0xC30 + width);
    const int64_t target = 7;
    std::vector<int64_t> colliders;
    for (int64_t x = 1000;
         colliders.size() < 12 && x < 50000000; ++x) {
      bool all = true;
      for (size_t r = 0; r < cm.depth(); ++r) {
        if (cm.Bucket(r, x) != cm.Bucket(r, target)) {
          all = false;
          break;
        }
      }
      if (all) colliders.push_back(x);
    }
    for (int round = 0; round < 100 && !colliders.empty(); ++round) {
      for (int64_t c : colliders) cm.Insert(c);
    }
    const double est = cm.EstimateFrequency(target);
    cm_table.AddRow({std::to_string(width) + "x2", FormatDouble(est, 3),
                     FormatBool(est >= kAlpha)});
  }
  cm_table.Print(std::cout);
  std::cout << "\nShape check: the sampled estimator and the deterministic "
               "baselines keep both recall and precision at 1.00 under the "
               "adaptive stream; CountMin's estimate for a never-inserted "
               "target is driven above alpha by an adaptive adversary that "
               "exploits its linear structure.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
