// T3: sharded-pipeline ingestion throughput, old-vs-new data plane.
//
// Sweeps 1/2/4/8 shards x {round-robin, hash} partitioning on a
// 1e7-element stream for two engines:
//   - "mailbox": the pre-PR-4 data plane (mutex + condition-variable
//     deque mailbox per shard, one freshly allocated std::vector copy per
//     shard per batch), preserved below as LegacyMailboxPipeline;
//   - "ring": the current zero-copy data plane (spsc_ring.h SPSC rings +
//     batch_pool.h pooled refcounted buffers; one materialization per
//     batch, span slices per shard, no steady-state allocation).
// A single-threaded per-element RobustSample::Insert run anchors the
// speedup column, and every merged snapshot is checked to estimate prefix
// densities within eps through the erased query surface.
//
// The multi-producer sweep (stable row names `ring-zc/p{P}s{S}` and
// `hash/p{P}s{S}`) measures the P x S fan-in matrix: P registered
// producers each publishing through their own SPSC ring column, vs a
// cavalieri-style shared reservoir (`shared-reservoir/p{P}`: one atomic
// fetch_add + one mutex-guarded slot write per element — the naive
// shared-state design the matrix exists to beat). These rows feed the
// hard CI gate in tools/bench_diff.py --gate t3: ring-zc throughput
// monotone non-decreasing 1->8 shards at >= 4 producers, and hash
// partitioning >= the insert-loop baseline at 4 shards — enforced only
// over (P, S) points the host's hardware threads can actually run
// concurrently.
//
// Acceptance targets: ring >= 1.5x mailbox at 4 shards (round-robin), and
// every merged snapshot eps-accurate. Results land in BENCH_t3.json for
// the cross-PR perf trajectory.
//
// RS_BENCH_SMOKE=1 shrinks the stream 10x for CI smoke runs.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/check.h"
#include "core/random.h"
#include "core/robust_sample.h"
#include "harness/table.h"
#include "obs/metrics.h"
#include "pipeline/sharded_pipeline.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.1;
constexpr double kDelta = 0.05;
constexpr uint64_t kUniverse = uint64_t{1} << 20;
constexpr size_t kBatchSize = 1 << 16;
constexpr uint64_t kSeed = 2024;

// ---------------------------------------------------------------------------
// LegacyMailboxPipeline: the PR-1..3 ShardedPipeline data plane, kept here
// (and only here) so the bench can measure the rewrite against its
// predecessor. Semantics match the old implementation: per-shard
// mutex-guarded std::deque mailbox, CV wakeup on every enqueue/dequeue,
// and one heap-allocated std::vector copy per shard per batch.
// ---------------------------------------------------------------------------
template <typename T>
class LegacyMailboxPipeline {
 public:
  LegacyMailboxPipeline(const SketchConfig& config, size_t num_shards,
                        PartitionPolicy partition,
                        size_t mailbox_capacity = 64)
      : partition_(partition), mailbox_capacity_(mailbox_capacity) {
    const auto& registry = SketchRegistry<T>::Global();
    shards_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      auto shard = std::make_unique<Shard>();
      shard->sketch =
          registry.Create(config, MixSeed(config.seed, uint64_t{s}));
      shards_.push_back(std::move(shard));
    }
    staging_.resize(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      shards_[s]->worker = std::thread(&LegacyMailboxPipeline::WorkerLoop,
                                       this, shards_[s].get());
    }
  }

  ~LegacyMailboxPipeline() { Stop(); }

  void Ingest(std::span<const T> batch) {
    if (batch.empty()) return;
    if (partition_ == PartitionPolicy::kRoundRobin) {
      IngestRoundRobin(batch);
    } else {
      IngestHashed(batch);
    }
  }

  void Flush() {
    for (auto& shard : shards_) {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv.wait(lock, [&shard] {
        return shard->mailbox.empty() && shard->idle;
      });
    }
  }

  StreamSketch<T> Snapshot() {
    Flush();
    StreamSketch<T> merged = CopyShardSketch(0);
    for (size_t s = 1; s < shards_.size(); ++s) {
      const StreamSketch<T> piece = CopyShardSketch(s);
      merged.MergeFrom(piece);
    }
    return merged;
  }

  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    for (auto& shard : shards_) {
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->stop = true;
      }
      shard->cv.notify_all();
    }
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  }

 private:
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<T>> mailbox;
    bool stop = false;
    bool idle = true;
    StreamSketch<T> sketch;
    std::thread worker;
  };

  static uint64_t HashElement(const T& x) {
    return MixSeed(static_cast<uint64_t>(x), 0x9e3779b97f4a7c15ULL);
  }

  void IngestHashed(std::span<const T> batch) {
    const size_t n = shards_.size();
    if (n == 1) {
      Enqueue(*shards_[0], std::vector<T>(batch.begin(), batch.end()));
      return;
    }
    for (const T& x : batch) {
      staging_[static_cast<size_t>(HashElement(x) % n)].push_back(x);
    }
    for (size_t s = 0; s < n; ++s) {
      if (staging_[s].empty()) continue;
      std::vector<T> piece;
      piece.swap(staging_[s]);
      Enqueue(*shards_[s], std::move(piece));
    }
  }

  void IngestRoundRobin(std::span<const T> batch) {
    const size_t n = shards_.size();
    const size_t base = batch.size() / n;
    const size_t rem = batch.size() % n;
    size_t offset = 0;
    for (size_t i = 0; i < n && offset < batch.size(); ++i) {
      const size_t shard = (rr_start_ + i) % n;
      const size_t len = base + (i < rem ? 1 : 0);
      if (len == 0) continue;
      Enqueue(*shards_[shard],
              std::vector<T>(batch.begin() + offset,
                             batch.begin() + offset + len));
      offset += len;
    }
    rr_start_ = (rr_start_ + 1) % n;
  }

  void Enqueue(Shard& shard, std::vector<T> piece) {
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] {
        return shard.mailbox.size() < mailbox_capacity_;
      });
      shard.mailbox.push_back(std::move(piece));
    }
    shard.cv.notify_all();
  }

  StreamSketch<T> CopyShardSketch(size_t s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    return shards_[s]->sketch;
  }

  void WorkerLoop(Shard* shard) {
    for (;;) {
      std::vector<T> batch;
      {
        std::unique_lock<std::mutex> lock(shard->mu);
        shard->cv.wait(lock, [shard] {
          return shard->stop || !shard->mailbox.empty();
        });
        if (shard->mailbox.empty()) return;
        batch = std::move(shard->mailbox.front());
        shard->mailbox.pop_front();
        shard->idle = false;
      }
      shard->cv.notify_all();
      shard->sketch.InsertBatch(batch);
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->idle = true;
      }
      shard->cv.notify_all();
    }
  }

  PartitionPolicy partition_;
  size_t mailbox_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<T>> staging_;
  size_t rr_start_ = 0;
  bool stopped_ = false;
};

// ---------------------------------------------------------------------------

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

struct PrefixRange {
  int64_t threshold;
  double true_density;
};

// Exact densities of the probe prefixes, computed once from the sorted
// stream (rank of the last occurrence of each threshold).
std::vector<PrefixRange> GroundTruthRanges(
    const std::vector<int64_t>& sorted) {
  std::vector<PrefixRange> out;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const int64_t threshold =
        sorted[static_cast<size_t>(q * (sorted.size() - 1))];
    const size_t truth = static_cast<size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), threshold) -
        sorted.begin());
    out.push_back(PrefixRange{
        threshold,
        static_cast<double>(truth) / static_cast<double>(sorted.size())});
  }
  return out;
}

// Probes through the erased query surface: Rank(x) on the merged snapshot
// is the sample's prefix-density estimate — no TryAs<> downcast.
double MaxPrefixDensityError(const StreamSketch<int64_t>& snapshot,
                             const std::vector<PrefixRange>& ranges) {
  double worst = 0.0;
  for (const PrefixRange& range : ranges) {
    const double est =
        snapshot.Rank(static_cast<double>(range.threshold));
    worst = std::max(worst, std::abs(est - range.true_density));
  }
  return worst;
}

SketchConfig MakeConfig() {
  SketchConfig config;
  config.kind = "robust_sample";
  config.eps = kEps;
  config.delta = kDelta;
  config.universe_size = kUniverse;
  config.seed = kSeed;
  return config;
}

struct RunResult {
  double secs = 0.0;
  double err = 0.0;
};

// Shared ingest-time-snapshot harness for both engines. `borrowed`
// selects the zero-copy IngestBorrowed path (ShardedPipeline only; the
// stream vector outlives the run, satisfying the lifetime contract).
template <typename Pipeline>
RunResult TimeIngestion(Pipeline& pipeline,
                        const std::vector<int64_t>& stream,
                        const std::vector<PrefixRange>& ranges,
                        bool borrowed = false) {
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < stream.size(); i += kBatchSize) {
    const size_t len = std::min(kBatchSize, stream.size() - i);
    const std::span<const int64_t> batch(stream.data() + i, len);
    if constexpr (requires { pipeline.IngestBorrowed(batch); }) {
      if (borrowed) {
        pipeline.IngestBorrowed(batch);
        continue;
      }
    }
    pipeline.Ingest(batch);
  }
  pipeline.Flush();
  const auto t1 = std::chrono::steady_clock::now();
  RunResult result;
  result.secs = Seconds(t0, t1);
  result.err = MaxPrefixDensityError(pipeline.Snapshot(), ranges);
  return result;
}

const char* PartitionName(PartitionPolicy policy) {
  return policy == PartitionPolicy::kRoundRobin ? "round-robin" : "hash";
}

// ---------------------------------------------------------------------------
// Multi-producer harness + the cavalieri-style shared-state contrast.
// ---------------------------------------------------------------------------

/// P producer threads, each ingesting its contiguous slice of the stream
/// through its own registered handle. Timing covers thread launch to
/// flush — the full fan-in cost, not just the per-batch publish.
RunResult TimeMultiProducer(const SketchConfig& config,
                            PipelineOptions options, size_t producers,
                            const std::vector<int64_t>& stream,
                            const std::vector<PrefixRange>& ranges,
                            bool borrowed) {
  options.max_producers = producers;
  ShardedPipeline<int64_t> pipeline(config, options);
  const size_t chunk = stream.size() / producers;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    const size_t begin = p * chunk;
    const size_t end = p + 1 == producers ? stream.size() : begin + chunk;
    threads.emplace_back([&pipeline, &stream, begin, end, borrowed] {
      auto& handle = pipeline.RegisterProducer();
      for (size_t i = begin; i < end; i += kBatchSize) {
        const std::span<const int64_t> batch(
            stream.data() + i, std::min(kBatchSize, end - i));
        if (borrowed) {
          handle.IngestBorrowed(batch);
        } else {
          handle.Ingest(batch);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  pipeline.Flush();
  const auto t1 = std::chrono::steady_clock::now();
  RunResult result;
  result.secs = Seconds(t0, t1);
  result.err = MaxPrefixDensityError(pipeline.Snapshot(), ranges);
  pipeline.Stop();
  return result;
}

/// The naive shared-state reservoir from SNIPPETS.md's cavalieri exemplar:
/// every producer thread contends on ONE atomic stream counter and ONE
/// mutex around the sample array. This is the design the P x S ring
/// matrix replaces — kept here as the contrast row, not used anywhere
/// else in the codebase.
class SharedLockedReservoir {
 public:
  SharedLockedReservoir(size_t size, uint64_t seed)
      : samples_(size), size_(size), seed_(seed) {}

  void Insert(size_t thread_index, int64_t value) {
    thread_local Rng rng(MixSeed(seed_, uint64_t{thread_index}));
    const uint64_t idx = n_.fetch_add(1, std::memory_order_relaxed);
    if (idx < size_) {
      std::lock_guard<std::mutex> lock(mu_);
      samples_[idx] = value;
    } else {
      const uint64_t j = rng.NextBelow(idx + 1);
      if (j < size_) {
        std::lock_guard<std::mutex> lock(mu_);
        samples_[j] = value;
      }
    }
  }

  uint64_t Count() const { return n_.load(std::memory_order_relaxed); }

 private:
  std::vector<int64_t> samples_;
  const size_t size_;
  const uint64_t seed_;
  std::atomic<uint64_t> n_{0};
  std::mutex mu_;
};

double TimeSharedReservoir(size_t producers,
                           const std::vector<int64_t>& stream) {
  SharedLockedReservoir reservoir(4096, kSeed);
  const size_t chunk = stream.size() / producers;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    const size_t begin = p * chunk;
    const size_t end = p + 1 == producers ? stream.size() : begin + chunk;
    threads.emplace_back([&reservoir, &stream, begin, end, p] {
      for (size_t i = begin; i < end; ++i) {
        reservoir.Insert(p, stream[i]);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  RS_CHECK_MSG(reservoir.Count() == stream.size(),
               "shared reservoir lost elements");
  return Seconds(t0, t1);
}

void Run(bool with_metrics) {
  const bool smoke = [] {
    const char* env = std::getenv("RS_BENCH_SMOKE");
    return env != nullptr && *env != '\0';
  }();
  const size_t stream_length = smoke ? 1'000'000 : 10'000'000;

  std::cout << "# T3: sharded pipeline ingestion throughput (mailbox vs "
               "SPSC-ring data plane)\n";
  std::cout << "Stream: " << stream_length
            << " uniform int64 elements, universe 2^20; sketch: "
               "robust_sample(eps="
            << kEps << ", delta=" << kDelta
            << "); batch size: " << kBatchSize
            << (smoke ? "; SMOKE MODE (10x shorter stream)" : "") << ".\n\n";

  const auto stream = UniformIntStream(
      stream_length, static_cast<int64_t>(kUniverse), kSeed);
  std::vector<int64_t> sorted = stream;
  std::sort(sorted.begin(), sorted.end());
  const auto ranges = GroundTruthRanges(sorted);

  // Baseline: single-threaded, one element at a time.
  auto baseline = RobustSample<int64_t>::ForQuantiles(kEps, kDelta,
                                                      kUniverse, kSeed);
  const auto b0 = std::chrono::steady_clock::now();
  for (int64_t v : stream) baseline.Insert(v);
  const auto b1 = std::chrono::steady_clock::now();
  const double baseline_secs = Seconds(b0, b1);

  MarkdownTable table({"engine", "partition", "shards", "time (s)",
                       "Melem/s", "vs baseline", "vs mailbox",
                       "max prefix err", "err <= eps"});
  auto meps = [&](double secs) {
    return static_cast<double>(stream_length) / secs / 1e6;
  };
  table.AddRow({"insert-loop", "-", "1", FormatDouble(baseline_secs, 3),
                FormatDouble(meps(baseline_secs), 1), "1.00x", "-", "-",
                "-"});

  double ring_secs_at_4rr = 0.0;
  double ring_secs_at_1rr = 0.0;
  double mailbox_secs_at_4rr = 0.0;
  bool all_accurate = true;

  for (PartitionPolicy policy :
       {PartitionPolicy::kRoundRobin, PartitionPolicy::kHash}) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      const SketchConfig config = MakeConfig();

      LegacyMailboxPipeline<int64_t> mailbox(config, shards, policy);
      const RunResult old_run = TimeIngestion(mailbox, stream, ranges);
      mailbox.Stop();

      PipelineOptions options;
      options.num_shards = shards;
      options.partition = policy;
      options.prewarm_batch_elements = kBatchSize;
      ShardedPipeline<int64_t> ring(config, options);
      const RunResult new_run = TimeIngestion(ring, stream, ranges);
      ring.Stop();

      // The zero-copy path (kRoundRobin only: kHash scatter is
      // content-addressed, so IngestBorrowed degenerates to the pooled
      // staging path there). Bit-identical snapshots to `ring` by
      // construction — only the data movement differs.
      RunResult zc_run;
      const bool has_zc = policy == PartitionPolicy::kRoundRobin;
      if (has_zc) {
        ShardedPipeline<int64_t> ring_zc(config, options);
        zc_run = TimeIngestion(ring_zc, stream, ranges, /*borrowed=*/true);
        ring_zc.Stop();
      }

      all_accurate &= old_run.err <= kEps && new_run.err <= kEps;
      if (policy == PartitionPolicy::kRoundRobin) {
        all_accurate &= zc_run.err <= kEps;
        if (shards == 1) ring_secs_at_1rr = zc_run.secs;
        if (shards == 4) {
          ring_secs_at_4rr = zc_run.secs;
          mailbox_secs_at_4rr = old_run.secs;
        }
      }

      table.AddRow({"mailbox", PartitionName(policy),
                    std::to_string(shards), FormatDouble(old_run.secs, 3),
                    FormatDouble(meps(old_run.secs), 1),
                    FormatDouble(baseline_secs / old_run.secs, 2) + "x",
                    "1.00x", FormatDouble(old_run.err),
                    FormatBool(old_run.err <= kEps)});
      table.AddRow({"ring", PartitionName(policy), std::to_string(shards),
                    FormatDouble(new_run.secs, 3),
                    FormatDouble(meps(new_run.secs), 1),
                    FormatDouble(baseline_secs / new_run.secs, 2) + "x",
                    FormatDouble(old_run.secs / new_run.secs, 2) + "x",
                    FormatDouble(new_run.err),
                    FormatBool(new_run.err <= kEps)});
      if (has_zc) {
        table.AddRow({"ring-zc", PartitionName(policy),
                      std::to_string(shards), FormatDouble(zc_run.secs, 3),
                      FormatDouble(meps(zc_run.secs), 1),
                      FormatDouble(baseline_secs / zc_run.secs, 2) + "x",
                      FormatDouble(old_run.secs / zc_run.secs, 2) + "x",
                      FormatDouble(zc_run.err),
                      FormatBool(zc_run.err <= kEps)});
      }
    }
  }
  // Observability overhead check: the same zero-copy run at 4 shards
  // (round-robin), instrumented vs with metrics disabled at runtime (in
  // an RS_METRICS=OFF build the toggle is itself a no-op and the two rows
  // measure the compiled-out configuration twice). Alternating best-of-2
  // on each side filters scheduler noise on small CI machines.
  double obs_on_secs = 0.0, obs_off_secs = 0.0;
  double obs_off_err = 0.0;
  {
    const SketchConfig config = MakeConfig();
    PipelineOptions options;
    options.num_shards = 4;
    options.partition = PartitionPolicy::kRoundRobin;
    options.prewarm_batch_elements = kBatchSize;
    for (int rep = 0; rep < 2; ++rep) {
      {
        ShardedPipeline<int64_t> ring(config, options);
        const RunResult run = TimeIngestion(ring, stream, ranges,
                                            /*borrowed=*/true);
        ring.Stop();
        obs_on_secs = rep == 0 ? run.secs : std::min(obs_on_secs, run.secs);
      }
      obs::SetRuntimeEnabled(false);
      {
        ShardedPipeline<int64_t> ring(config, options);
        const RunResult run = TimeIngestion(ring, stream, ranges,
                                            /*borrowed=*/true);
        ring.Stop();
        obs_off_secs =
            rep == 0 ? run.secs : std::min(obs_off_secs, run.secs);
        obs_off_err = run.err;
      }
      obs::SetRuntimeEnabled(true);
    }
    all_accurate &= obs_off_err <= kEps;
    table.AddRow({"ring-zc-obs-off", "round-robin", "4",
                  FormatDouble(obs_off_secs, 3),
                  FormatDouble(meps(obs_off_secs), 1),
                  FormatDouble(baseline_secs / obs_off_secs, 2) + "x",
                  FormatDouble(mailbox_secs_at_4rr / obs_off_secs, 2) + "x",
                  FormatDouble(obs_off_err), FormatBool(obs_off_err <= kEps)});
    table.AddRow({"ring-zc-obs-on", "round-robin", "4",
                  FormatDouble(obs_on_secs, 3),
                  FormatDouble(meps(obs_on_secs), 1),
                  FormatDouble(baseline_secs / obs_on_secs, 2) + "x",
                  FormatDouble(mailbox_secs_at_4rr / obs_on_secs, 2) + "x",
                  "-", "-"});
  }

  // --- multi-producer sweep: the P x S fan-in matrix --------------------
  // Stable row names (`ring-zc/p{P}s{S}`, `hash/p{P}s{S}`) so
  // tools/bench_diff.py --window tracks them and --gate t3 enforces the
  // scaling gates. ring-zc rows use the borrowed zero-copy path; hash
  // rows exercise the vectorized partition pass. Small rings bound
  // memory: the hash rows prewarm per-producer pools.
  struct MpPoint {
    size_t producers;
    size_t shards;
    double melems;
  };
  std::vector<MpPoint> zc_points;
  std::vector<MpPoint> hash_points;
  for (size_t producers : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      const SketchConfig config = MakeConfig();
      PipelineOptions options;
      options.num_shards = shards;
      options.partition = PartitionPolicy::kRoundRobin;
      options.ring_capacity = 8;
      const RunResult zc = TimeMultiProducer(config, options, producers,
                                             stream, ranges,
                                             /*borrowed=*/true);
      all_accurate &= zc.err <= kEps;
      zc_points.push_back(MpPoint{producers, shards, meps(zc.secs)});
      table.AddRow({"ring-zc/p" + std::to_string(producers) + "s" +
                        std::to_string(shards),
                    "round-robin", std::to_string(shards),
                    FormatDouble(zc.secs, 3), FormatDouble(meps(zc.secs), 1),
                    FormatDouble(baseline_secs / zc.secs, 2) + "x", "-",
                    FormatDouble(zc.err), FormatBool(zc.err <= kEps)});
    }
    // The hash-gate point: vectorized partition at 4 shards.
    {
      const SketchConfig config = MakeConfig();
      PipelineOptions options;
      options.num_shards = 4;
      options.partition = PartitionPolicy::kHash;
      options.ring_capacity = 8;
      options.prewarm_batch_elements = kBatchSize;
      const RunResult hashed = TimeMultiProducer(config, options, producers,
                                                 stream, ranges,
                                                 /*borrowed=*/false);
      all_accurate &= hashed.err <= kEps;
      hash_points.push_back(MpPoint{producers, 4, meps(hashed.secs)});
      table.AddRow({"hash/p" + std::to_string(producers) + "s4", "hash",
                    "4", FormatDouble(hashed.secs, 3),
                    FormatDouble(meps(hashed.secs), 1),
                    FormatDouble(baseline_secs / hashed.secs, 2) + "x", "-",
                    FormatDouble(hashed.err),
                    FormatBool(hashed.err <= kEps)});
    }
  }
  // Cavalieri-style contrast: one shared reservoir, all producers
  // contending on a single atomic counter + mutex-guarded slot array.
  for (size_t producers : {size_t{1}, size_t{4}}) {
    const double secs = TimeSharedReservoir(producers, stream);
    table.AddRow({"shared-reservoir/p" + std::to_string(producers), "-",
                  "1", FormatDouble(secs, 3), FormatDouble(meps(secs), 1),
                  FormatDouble(baseline_secs / secs, 2) + "x", "-", "-",
                  "-"});
  }

  table.Print(std::cout);
  const std::vector<std::pair<std::string, std::string>> extra_meta = {
      {"stream_length", std::to_string(stream_length)},
      {"batch_size", std::to_string(kBatchSize)},
      {"smoke", smoke ? "true" : "false"},
  };
  std::string metrics_json;
  if (with_metrics) {
    metrics_json = obs::MetricRegistry::Global().ToJson();
  }
  if (WriteBenchJson("t3", table, extra_meta,
                     with_metrics ? &metrics_json : nullptr)) {
    std::cout << "\n(wrote BENCH_t3.json"
              << (with_metrics ? " with metrics snapshot" : "") << ")\n";
  }

  const double ring_vs_mailbox = mailbox_secs_at_4rr / ring_secs_at_4rr;
  const double scaling_1_to_4 = ring_secs_at_1rr / ring_secs_at_4rr;
  const double obs_overhead = obs_on_secs / obs_off_secs - 1.0;
  std::cout << "\nacceptance: zero-copy ring vs mailbox at 4 shards (round-robin) = "
            << FormatDouble(ring_vs_mailbox, 2)
            << "x (target >= 1.5x); ring 1->4 shard scaling = "
            << FormatDouble(scaling_1_to_4, 2)
            << "x (hardware threads: " << std::thread::hardware_concurrency()
            << "); all snapshots eps-accurate = " << FormatBool(all_accurate)
            << " -> "
            << ((ring_vs_mailbox >= 1.5 && all_accurate) ? "PASS" : "FAIL")
            << "\n";
  std::cout << "acceptance: metrics overhead on ring-zc at 4 shards = "
            << FormatDouble(obs_overhead * 100.0, 1)
            << "% (target <= 3%) -> "
            << (obs_overhead <= 0.03 ? "PASS" : "FAIL") << "\n";

  // The two ROADMAP scaling gates, evaluated here informationally with
  // the same hardware-feasibility rule the hard CI gate applies
  // (tools/bench_diff.py --gate t3): a (P, S) point counts only when
  // P + S concurrent threads fit the host.
  const size_t hw = std::thread::hardware_concurrency();
  {
    bool monotone = true;
    size_t considered = 0;
    double prev = 0.0;
    for (const MpPoint& point : zc_points) {
      if (point.producers < 4 || point.producers + point.shards > hw) {
        continue;
      }
      if (considered > 0 && point.melems < 0.90 * prev) monotone = false;
      prev = point.melems;
      ++considered;
    }
    std::cout << "acceptance: ring-zc shard scaling monotone at >=4 "
                 "producers (0.90 noise floor) -> "
              << (considered < 2
                      ? "SKIP (hardware: " + std::to_string(hw) + " threads)"
                      : (monotone ? "PASS" : "FAIL"))
              << "\n";
  }
  {
    bool met = true;
    size_t considered = 0;
    const double baseline_melems = meps(baseline_secs);
    for (const MpPoint& point : hash_points) {
      if (point.producers < 4 || point.producers + point.shards > hw) {
        continue;
      }
      ++considered;
      if (point.melems < 0.95 * baseline_melems) met = false;
    }
    std::cout << "acceptance: hash partition >= insert-loop baseline at 4 "
                 "shards, >=4 producers (0.95 noise floor) -> "
              << (considered == 0
                      ? "SKIP (hardware: " + std::to_string(hw) + " threads)"
                      : (met ? "PASS" : "FAIL"))
              << "\n";
  }
}

}  // namespace
}  // namespace robust_sampling

int main(int argc, char** argv) {
  bool with_metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--metrics") with_metrics = true;
  }
  robust_sampling::Run(with_metrics);
  return 0;
}
