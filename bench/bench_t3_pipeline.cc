// T3: sharded-pipeline ingestion throughput. Compares the single-threaded
// per-element RobustSample::Insert baseline against ShardedPipeline at
// 1/2/4/8 shards (round-robin partitioning, batched ingestion through the
// reservoir's geometric-skip InsertBatch hot path) on a 1e7-element
// stream, and verifies that the merged N-shard snapshot still estimates
// prefix densities within eps.
//
// Acceptance target: >= 2x the single-thread baseline at 4 shards. The
// speedup comes from the batch hot path doing O(k log(n/k)) random draws
// instead of O(n) — so it materializes even on a single hardware thread.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <span>
#include <vector>

#include "core/robust_sample.h"
#include "harness/table.h"
#include "pipeline/sharded_pipeline.h"
#include "pipeline/stream_sketch.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.1;
constexpr double kDelta = 0.05;
constexpr uint64_t kUniverse = uint64_t{1} << 20;
constexpr size_t kStreamLength = 10'000'000;
constexpr size_t kBatchSize = 1 << 16;
constexpr uint64_t kSeed = 2024;

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

struct PrefixRange {
  int64_t threshold;
  double true_density;
};

// Exact densities of the probe prefixes, computed once from the sorted
// stream (rank of the last occurrence of each threshold).
std::vector<PrefixRange> GroundTruthRanges(
    const std::vector<int64_t>& sorted) {
  std::vector<PrefixRange> out;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const int64_t threshold =
        sorted[static_cast<size_t>(q * (sorted.size() - 1))];
    const size_t truth = static_cast<size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), threshold) -
        sorted.begin());
    out.push_back(PrefixRange{
        threshold,
        static_cast<double>(truth) / static_cast<double>(sorted.size())});
  }
  return out;
}

double MaxPrefixDensityError(const RobustSample<int64_t>& sample,
                             const std::vector<PrefixRange>& ranges) {
  double worst = 0.0;
  for (const PrefixRange& range : ranges) {
    const int64_t threshold = range.threshold;
    const double est = sample.EstimateDensity(
        [threshold](int64_t v) { return v <= threshold; });
    worst = std::max(worst, std::abs(est - range.true_density));
  }
  return worst;
}

// Same probe through the erased query surface: Rank(x) on the merged
// snapshot is the sample's prefix-density estimate — no TryAs<> downcast.
double MaxPrefixDensityError(const StreamSketch<int64_t>& snapshot,
                             const std::vector<PrefixRange>& ranges) {
  double worst = 0.0;
  for (const PrefixRange& range : ranges) {
    const double est =
        snapshot.Rank(static_cast<double>(range.threshold));
    worst = std::max(worst, std::abs(est - range.true_density));
  }
  return worst;
}

void Run() {
  std::cout << "# T3: sharded pipeline ingestion throughput\n";
  std::cout << "Stream: " << kStreamLength
            << " uniform int64 elements, universe 2^20; sketch: "
               "robust_sample(eps="
            << kEps << ", delta=" << kDelta
            << "); batch size: " << kBatchSize
            << "; partition: round-robin.\n\n";

  const auto stream = UniformIntStream(
      kStreamLength, static_cast<int64_t>(kUniverse), kSeed);
  std::vector<int64_t> sorted = stream;
  std::sort(sorted.begin(), sorted.end());
  const auto ranges = GroundTruthRanges(sorted);

  // Baseline: single-threaded, one element at a time.
  auto baseline = RobustSample<int64_t>::ForQuantiles(kEps, kDelta,
                                                      kUniverse, kSeed);
  const auto b0 = std::chrono::steady_clock::now();
  for (int64_t v : stream) baseline.Insert(v);
  const auto b1 = std::chrono::steady_clock::now();
  const double baseline_secs = Seconds(b0, b1);
  const double baseline_meps =
      static_cast<double>(kStreamLength) / baseline_secs / 1e6;

  MarkdownTable table({"config", "time (s)", "Melem/s", "speedup",
                       "max prefix err", "err <= eps"});
  table.AddRow({"single-thread Insert", FormatDouble(baseline_secs, 3),
                FormatDouble(baseline_meps, 1), "1.00x",
                FormatDouble(MaxPrefixDensityError(baseline, ranges)),
                FormatBool(true)});

  double speedup_at_4 = 0.0;
  bool accuracy_at_4 = false;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    SketchConfig config;
    config.kind = "robust_sample";
    config.eps = kEps;
    config.delta = kDelta;
    config.universe_size = kUniverse;
    config.seed = kSeed;
    PipelineOptions options;
    options.num_shards = shards;
    options.partition = PartitionPolicy::kRoundRobin;
    ShardedPipeline<int64_t> pipeline(config, options);
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < stream.size(); i += kBatchSize) {
      const size_t len = std::min(kBatchSize, stream.size() - i);
      pipeline.Ingest(std::span<const int64_t>(stream.data() + i, len));
    }
    pipeline.Flush();
    const auto t1 = std::chrono::steady_clock::now();
    const auto snapshot = pipeline.Snapshot();
    const double secs = Seconds(t0, t1);
    const double meps = static_cast<double>(kStreamLength) / secs / 1e6;
    const double speedup = baseline_secs / secs;
    const double err = MaxPrefixDensityError(snapshot, ranges);
    if (shards == 4) {
      speedup_at_4 = speedup;
      accuracy_at_4 = err <= kEps;
    }
    table.AddRow({"pipeline x" + std::to_string(shards),
                  FormatDouble(secs, 3), FormatDouble(meps, 1),
                  FormatDouble(speedup, 2) + "x", FormatDouble(err),
                  FormatBool(err <= kEps)});
  }
  table.Print(std::cout);
  if (WriteBenchJson("t3", table)) {
    std::cout << "\n(wrote BENCH_t3.json)\n";
  }

  std::cout << "\nacceptance: 4-shard speedup = "
            << FormatDouble(speedup_at_4, 2)
            << "x (target >= 2x), merged snapshot eps-accurate = "
            << FormatBool(accuracy_at_4) << " -> "
            << ((speedup_at_4 >= 2.0 && accuracy_at_4) ? "PASS" : "FAIL")
            << "\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
