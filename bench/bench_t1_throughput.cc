// T1: throughput microbenchmarks for the samplers and the discrepancy
// evaluators (google-benchmark). Includes the DESIGN.md ablation:
// Algorithm R vs the skip-optimized Algorithm L reservoir.

#include <cstdint>
#include <vector>

#include "benchmark/benchmark.h"
#include "benchmark_json_main.h"
#include "core/bernoulli_sampler.h"
#include "core/reservoir_sampler.h"
#include "core/weighted_reservoir_sampler.h"
#include "setsystem/discrepancy.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

void BM_BernoulliSampler(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 1000.0;
  const auto stream = UniformIntStream(1 << 16, 1 << 20, 1);
  for (auto _ : state) {
    BernoulliSampler<int64_t> s(p, 42);
    for (int64_t v : stream) s.Insert(v);
    benchmark::DoNotOptimize(s.sample().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_BernoulliSampler)->Name("t1/bernoulli")->Arg(1)->Arg(10)->Arg(100);

void BM_ReservoirAlgorithmR(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const auto stream = UniformIntStream(1 << 16, 1 << 20, 2);
  for (auto _ : state) {
    ReservoirSampler<int64_t> s(k, 42);
    for (int64_t v : stream) s.Insert(v);
    benchmark::DoNotOptimize(s.sample().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_ReservoirAlgorithmR)->Name("t1/reservoir_r")->Arg(64)->Arg(1024)->Arg(16384);

void BM_ReservoirAlgorithmL(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const auto stream = UniformIntStream(1 << 16, 1 << 20, 2);
  for (auto _ : state) {
    SkipReservoirSampler<int64_t> s(k, 42);
    for (int64_t v : stream) s.Insert(v);
    benchmark::DoNotOptimize(s.sample().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_ReservoirAlgorithmL)->Name("t1/reservoir_l")->Arg(64)->Arg(1024)->Arg(16384);

void BM_WeightedReservoir(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const auto stream = UniformIntStream(1 << 16, 1 << 20, 3);
  for (auto _ : state) {
    WeightedReservoirSampler<int64_t> s(k, 42);
    for (int64_t v : stream) s.Insert(v, 1.0 + static_cast<double>(v % 7));
    benchmark::DoNotOptimize(s.entries().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_WeightedReservoir)->Name("t1/weighted_reservoir")->Arg(64)->Arg(1024);

void BM_PrefixDiscrepancy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto stream = UniformIntStream(n, 1 << 20, 4);
  const auto sample = UniformIntStream(n / 16, 1 << 20, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrefixDiscrepancy(stream, sample));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_PrefixDiscrepancy)->Name("t1/prefix_discrepancy")->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_IntervalDiscrepancy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto stream = UniformIntStream(n, 1 << 20, 6);
  const auto sample = UniformIntStream(n / 16, 1 << 20, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalDiscrepancy(stream, sample));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_IntervalDiscrepancy)->Name("t1/interval_discrepancy")->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace
}  // namespace robust_sampling

int main(int argc, char** argv) {
  return robust_sampling::RunBenchmarksWithJsonDefault("BENCH_t1.json",
                                                       argc, argv);
}
