// net_admin_service: a long-running collector with the admin plane up, for
// smoke-testing the introspection endpoints from outside the process (CI
// curls /healthz, /metrics, /shippers, /trace.json against it).
//
// It starts a Collector<int64_t> with an ephemeral admin port, ships one
// count_min snapshot through a real SnapshotShipper (so the freshness
// table and metrics are non-empty), writes the admin port to --port-file,
// and stays alive for --run-for-ms before exiting 0.
//
//   net_admin_service [--admin-port N] [--port-file PATH] [--run-for-ms N]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/check.h"
#include "net/collector.h"
#include "net/snapshot_shipper.h"
#include "obs/flight_recorder.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "wire/codec.h"
#include "wire/snapshot.h"

namespace robust_sampling {
namespace {

int RunService(int admin_port, const std::string& port_file,
               int run_for_ms) {
  net::CollectorOptions options;
  options.admin_port = admin_port;
  net::Collector<int64_t> collector(options);
  std::string error;
  RS_CHECK_MSG(collector.Start(&error), "collector failed to start");
  RS_CHECK_MSG(collector.admin_port() != 0, "admin plane failed to bind");

  // Populate the plane: one real ship so /shippers, the freshness gauges,
  // and the flight recorder all have something to show.
  SketchConfig config;
  config.kind = "count_min";
  config.eps = 0.01;
  config.delta = 0.01;
  config.universe_size = 4096;
  config.width = 2048;
  config.depth = 4;
  config.seed = 0x7A55;
  auto sketch = SketchRegistry<int64_t>::Global().Create(config);
  std::vector<int64_t> stream;
  for (int64_t i = 0; i < 10'000; ++i) stream.push_back(i % 4096 + 1);
  {
    obs::TraceSpan span("net", "admin-service seed ingest");
    sketch.InsertBatch(stream);
  }
  wire::BufferSink sink;
  RS_CHECK_MSG(wire::WriteSnapshot(sketch, config, sink),
               "snapshot serialization failed");

  net::ShipperOptions ship_options;
  ship_options.port = collector.port();
  ship_options.shipper_id = 1;
  net::SnapshotShipper shipper(ship_options);
  shipper.Start();
  shipper.Offer(sink.TakeBytes(), /*total_ingested=*/stream.size());
  RS_CHECK_MSG(shipper.WaitUntilDrained(30'000), "seed ship did not drain");

  if (!port_file.empty()) {
    const std::string tmp = port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    RS_CHECK_MSG(f != nullptr, "cannot open --port-file");
    std::fprintf(f, "%u\n", collector.admin_port());
    std::fclose(f);
    // Rename so a polling reader never sees a half-written port.
    RS_CHECK_MSG(std::rename(tmp.c_str(), port_file.c_str()) == 0,
                 "cannot rename --port-file");
  }
  std::cout << "admin plane on 127.0.0.1:" << collector.admin_port()
            << " (collector on " << collector.port() << "), serving for "
            << run_for_ms << " ms\n";
  std::this_thread::sleep_for(std::chrono::milliseconds(run_for_ms));
  shipper.Stop();
  collector.Stop();
  return 0;
}

}  // namespace
}  // namespace robust_sampling

int main(int argc, char** argv) {
  int admin_port = 0;
  std::string port_file;
  int run_for_ms = 30'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--admin-port" && i + 1 < argc) {
      admin_port = std::atoi(argv[++i]);
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--run-for-ms" && i + 1 < argc) {
      run_for_ms = std::atoi(argv[++i]);
    } else {
      std::cerr << "usage: net_admin_service [--admin-port N] "
                   "[--port-file PATH] [--run-for-ms N]\n";
      return 2;
    }
  }
  return robust_sampling::RunService(admin_port, port_file, run_for_ms);
}
