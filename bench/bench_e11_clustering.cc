// Experiment E11 (Section 1.2, clustering): the sample-cluster-extrapolate
// framework. Fit k-means on a reservoir sample of the stream, evaluate the
// resulting centers on the full data, and compare against fitting on the
// full data directly. Sweeps the number of clusters and the sample size.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/random.h"
#include "core/reservoir_sampler.h"
#include "geometry/clustering.h"
#include "harness/table.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

constexpr size_t kN = 40000;

// Best-of-restarts k-means (plain Lloyd is sensitive to seeding; the
// experiment is about sampling, not seeding, so both fits get 5 restarts).
KMeansResult BestKMeans(const std::vector<Point>& pts, size_t k,
                        uint64_t seed) {
  KMeansResult best;
  best.cost = 1e300;
  for (uint64_t r = 0; r < 5; ++r) {
    const auto fit = KMeans(pts, k, MixSeed(seed, r));
    if (fit.cost < best.cost) best = fit;
  }
  return best;
}


std::vector<Point> MakeCenters(size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> centers;
  for (size_t c = 0; c < k; ++c) {
    centers.push_back(
        Point{rng.NextDoubleIn(-50.0, 50.0), rng.NextDoubleIn(-50.0, 50.0)});
  }
  return centers;
}

void Run() {
  std::cout << "# E11: clustering on a sample (Section 1.2)\n";
  std::cout << "n = " << kN
            << " points from a Gaussian mixture (sd = 2); cost = mean "
               "squared distance to nearest center\n\n";
  MarkdownTable table({"clusters", "sample size", "cost(full fit)",
                       "cost(sample fit, on full data)", "ratio",
                       "speedup proxy n/|S|"});
  for (size_t clusters : {size_t{2}, size_t{4}, size_t{8}}) {
    const auto true_centers = MakeCenters(clusters, 777 + clusters);
    const auto stream =
        GaussianMixturePointStream(kN, true_centers, 2.0, 1000 + clusters);
    const auto full_fit = BestKMeans(stream, clusters, 0xF17);
    for (size_t sample_size : {size_t{200}, size_t{1000}, size_t{5000}}) {
      ReservoirSampler<Point> reservoir(sample_size, 0x511 + sample_size);
      for (const Point& p : stream) reservoir.Insert(p);
      const auto sample_fit =
          BestKMeans(reservoir.sample(), clusters, 0xF17);
      const double extrapolated = KMeansCost(stream, sample_fit.centers);
      table.AddRow(
          {std::to_string(clusters), std::to_string(sample_size),
           FormatDouble(full_fit.cost, 3), FormatDouble(extrapolated, 3),
           FormatDouble(extrapolated / full_fit.cost, 3),
           FormatDouble(static_cast<double>(kN) / sample_size, 0)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nShape check: cost ratios stay near 1 (within ~1.2) even "
               "at 200x subsampling — clustering the sample recovers "
               "near-optimal centers at a fraction of the work.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
