// Experiment E5 (Theorem 1.4): continuous robustness. Measures the
// max-over-prefixes discrepancy of ReservoirSample across k values around
// the Theorem 1.4 bound, under both a static and an adaptive adversary,
// and shows that BernoulliSample cannot be continuously robust. Also
// ablates the checkpoint schedule: the geometric (1 + eps/4) schedule of
// the Theorem 1.4 proof versus the naive dense schedule, comparing the
// number of certification checks each needs.

#include <cmath>
#include <cstdint>
#include <iostream>

#include "attacklab/game_driver.h"
#include "core/sample_bounds.h"
#include "harness/table.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.25;
constexpr double kDelta = 0.1;
constexpr size_t kN = 4000;
constexpr uint64_t kUniverse = 1 << 20;
constexpr size_t kTrials = 6;

void Run() {
  const double log_r = std::log(static_cast<double>(kUniverse));
  const size_t k_continuous =
      ReservoirContinuousK(kEps, kDelta, log_r, kN, /*c=*/4.0);
  const size_t k_plain = ReservoirRobustK(kEps, kDelta, log_r);
  std::cout << "# E5: continuous robustness of ReservoirSample "
               "(Theorem 1.4)\n";
  std::cout << "n = " << kN << ", universe = 2^20 (prefix family), eps = "
            << kEps << ", delta = " << kDelta
            << ", Thm 1.4 k (c=4) = " << k_continuous
            << ", plain Thm 1.2 k = " << k_plain << ", " << kTrials
            << " trials/row\n\n";

  GameSpec spec;
  spec.sketch.kind = "reservoir";
  spec.sketch.universe_size = kUniverse;
  spec.n = kN;
  spec.eps = kEps;
  spec.schedule = ScheduleKind::kGeometric;  // Theorem 1.4 checkpoints
  spec.trials = kTrials;
  spec.base_seed = 0xE5;

  MarkdownTable table({"k", "adversary", "mean max-disc", "worst max-disc",
                       "Pr[max-disc<=eps]"});
  for (size_t k : {size_t{8}, size_t{64}, k_plain, k_continuous}) {
    for (bool adaptive : {false, true}) {
      spec.sketch.capacity = k;
      spec.adversary = adaptive ? "bisection" : "uniform";
      spec.split = adaptive ? 0.9 : -1.0;
      const GameReport report = PlayGame<int64_t>(spec);
      table.AddRow({std::to_string(k), adaptive ? "bisection" : "uniform",
                    FormatDouble(report.discrepancy.mean, 4),
                    FormatDouble(report.discrepancy.max, 4),
                    FormatDouble(report.FractionRobust(kEps), 2)});
    }
  }
  table.Print(std::cout);

  // Bernoulli impossibility (footnote 4): round 1 is unsampled w.p. 1 - p,
  // so even a constant stream (static adversary over a one-element
  // universe) violates the very first prefix.
  GameSpec bern;
  bern.sketch.kind = "bernoulli";
  bern.sketch.probability = 0.3;
  bern.sketch.universe_size = 1;
  bern.adversary = "static";
  bern.n = 16;
  bern.eps = 0.5;
  bern.schedule = ScheduleKind::kAll;
  bern.trials = 400;
  bern.base_seed = 0xE5B;
  const GameReport bern_report = PlayGame<int64_t>(bern);
  std::cout << "\nBernoulliSample(p=0.3) continuous violation rate over "
            << bern.trials << " runs: "
            << FormatDouble(
                   1.0 - bern_report.FractionContinuouslyApproximating(), 3)
            << " (theory: >= 1 - p = 0.7 -> not continuously robust for "
               "any useful p).\n";

  // Checkpoint-schedule ablation: certification cost.
  std::cout << "\n## Ablation: checkpoint schedule density (certification "
               "checks to cover all n rounds)\n\n";
  MarkdownTable ab({"schedule", "checks", "mean max-disc at checkpoints"});
  spec.sketch.capacity = k_continuous;
  spec.adversary = "uniform";
  spec.split = -1.0;
  spec.trials = 4;
  spec.base_seed = 0xE5C;
  struct Sched {
    const char* name;
    ScheduleKind kind;
  };
  const Sched schedules[] = {
      {"geometric(1+eps/4)", ScheduleKind::kGeometric},
      {"every n/20", ScheduleKind::kEvery},
      {"all rounds (naive union bound)", ScheduleKind::kAll},
  };
  for (const auto& s : schedules) {
    spec.schedule = s.kind;
    const GameReport report = PlayGame<int64_t>(spec);
    ab.AddRow({s.name, std::to_string(BuildSchedule(spec).size()),
               FormatDouble(report.discrepancy.mean, 4)});
  }
  ab.Print(std::cout);
  std::cout << "\nShape check: k at the Thm 1.4 bound keeps max-disc <= eps "
               "under both adversaries; undersized k fails; the geometric "
               "schedule needs exponentially fewer checks than the naive "
               "one at (near) identical certified discrepancy.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
