// Experiment E5 (Theorem 1.4): continuous robustness. Measures the
// max-over-prefixes discrepancy of ReservoirSample across k values around
// the Theorem 1.4 bound, under both a static and an adaptive adversary,
// and shows that BernoulliSample cannot be continuously robust. Also
// ablates the checkpoint schedule: the geometric (1 + eps/4) schedule of
// the Theorem 1.4 proof versus the naive dense schedule, comparing the
// number of certification checks each needs.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "adversary/basic_adversaries.h"
#include "adversary/bisection_adversary.h"
#include "core/adversarial_game.h"
#include "core/bernoulli_sampler.h"
#include "core/checkpoints.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "harness/table.h"
#include "harness/trial_runner.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.25;
constexpr double kDelta = 0.1;
constexpr size_t kN = 4000;
constexpr int64_t kUniverse = 1 << 20;
constexpr size_t kTrials = 6;

DiscrepancyFn<int64_t> PrefixFn() {
  return [](const std::vector<int64_t>& x, const std::vector<int64_t>& s) {
    return PrefixDiscrepancy(x, s);
  };
}

double MaxDiscOnce(size_t k, bool adaptive, uint64_t seed) {
  ReservoirSampler<int64_t> sampler(k, seed);
  const auto schedule =
      CheckpointSchedule::Geometric(std::max<size_t>(k, 1), kN, kEps / 4.0);
  if (adaptive) {
    BisectionAdversaryInt64 adv(kUniverse, 0.9);
    return RunContinuousAdaptiveGame(sampler, adv, kN, PrefixFn(), kEps,
                                     schedule)
        .max_discrepancy;
  }
  UniformAdversary adv(kUniverse, MixSeed(seed, 17));
  return RunContinuousAdaptiveGame(sampler, adv, kN, PrefixFn(), kEps,
                                   schedule)
      .max_discrepancy;
}

void Run() {
  const double log_r = std::log(static_cast<double>(kUniverse));
  const size_t k_continuous =
      ReservoirContinuousK(kEps, kDelta, log_r, kN, /*c=*/4.0);
  const size_t k_plain = ReservoirRobustK(kEps, kDelta, log_r);
  std::cout << "# E5: continuous robustness of ReservoirSample "
               "(Theorem 1.4)\n";
  std::cout << "n = " << kN << ", universe = 2^20 (prefix family), eps = "
            << kEps << ", delta = " << kDelta
            << ", Thm 1.4 k (c=4) = " << k_continuous
            << ", plain Thm 1.2 k = " << k_plain << ", " << kTrials
            << " trials/row\n\n";
  MarkdownTable table({"k", "adversary", "mean max-disc", "worst max-disc",
                       "Pr[max-disc<=eps]"});
  for (size_t k : {size_t{8}, size_t{64}, k_plain, k_continuous}) {
    for (bool adaptive : {false, true}) {
      const auto stats = RunTrials(kTrials, 0xE5, [&](uint64_t seed) {
        return MaxDiscOnce(k, adaptive, seed);
      });
      table.AddRow({std::to_string(k), adaptive ? "bisection" : "uniform",
                    FormatDouble(stats.mean, 4), FormatDouble(stats.max, 4),
                    FormatDouble(stats.FractionAtMost(kEps), 2)});
    }
  }
  table.Print(std::cout);

  // Bernoulli impossibility (footnote 4): round 1 is unsampled w.p. 1 - p.
  size_t violations = 0;
  constexpr size_t kBernoulliRuns = 400;
  for (size_t run = 0; run < kBernoulliRuns; ++run) {
    BernoulliSampler<int64_t> sampler(0.3, MixSeed(0xE5B, run));
    StaticAdversary<int64_t> adv(std::vector<int64_t>(16, 1));
    const auto r = RunContinuousAdaptiveGame(
        sampler, adv, 16, PrefixFn(), 0.5, CheckpointSchedule::All(16));
    violations += !r.continuously_approximating;
  }
  std::cout << "\nBernoulliSample(p=0.3) continuous violation rate over "
            << kBernoulliRuns << " runs: "
            << FormatDouble(static_cast<double>(violations) / kBernoulliRuns,
                            3)
            << " (theory: >= 1 - p = 0.7 -> not continuously robust for "
               "any useful p).\n";

  // Checkpoint-schedule ablation: certification cost.
  std::cout << "\n## Ablation: checkpoint schedule density (certification "
               "checks to cover all n rounds)\n\n";
  MarkdownTable ab({"schedule", "checks", "mean max-disc at checkpoints"});
  const size_t k = k_continuous;
  struct Sched {
    const char* name;
    CheckpointSchedule schedule;
  };
  const Sched schedules[] = {
      {"geometric(1+eps/4)",
       CheckpointSchedule::Geometric(k, kN, kEps / 4.0)},
      {"every n/20", CheckpointSchedule::Every(kN / 20, kN)},
      {"all rounds (naive union bound)", CheckpointSchedule::All(kN)},
  };
  for (const auto& s : schedules) {
    const auto stats = RunTrials(4, 0xE5C, [&](uint64_t seed) {
      UniformAdversary adv(kUniverse, MixSeed(seed, 19));
      ReservoirSampler<int64_t> sampler(k, seed);
      return RunContinuousAdaptiveGame(sampler, adv, kN, PrefixFn(), kEps,
                                       s.schedule)
          .max_discrepancy;
    });
    ab.AddRow({s.name, std::to_string(s.schedule.size()),
               FormatDouble(stats.mean, 4)});
  }
  ab.Print(std::cout);
  std::cout << "\nShape check: k at the Thm 1.4 bound keeps max-disc <= eps "
               "under both adversaries; undersized k fails; the geometric "
               "schedule needs exponentially fewer checks than the naive "
               "one at (near) identical certified discrepancy.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
