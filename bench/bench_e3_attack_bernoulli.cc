// Experiment E3 (Theorem 1.3 / Fig. 3, Bernoulli case): the attack drives
// BernoulliSample(p' = ln n / n) to a maximally unrepresentative state —
// the final sample is *exactly* the set of smallest stream elements and
// the prefix discrepancy approaches 1. Sweeps the stream length n (with
// the universe sized so the attack never exhausts, ln N = 2(ln n)^2 +
// 4 ln n) and, as an ablation, the split parameter p' of Fig. 3.

#include <cmath>
#include <cstdint>
#include <iostream>

#include "attacklab/game_driver.h"
#include "core/big_uint.h"
#include "core/sample_bounds.h"
#include "harness/table.h"

namespace robust_sampling {
namespace {

void Run() {
  std::cout << "# E3: the Fig. 3 attack on BernoulliSample "
               "(Theorem 1.3, part 1)\n";
  std::cout << "p = p' = ln n / n; universe ln N = 2(ln n)^2 + 4 ln n "
               "(attack sustains all rounds); 5 trials/row\n\n";

  GameSpec spec;
  spec.sketch.kind = "bernoulli";
  spec.adversary = "bisection";
  spec.eps = 0.25;
  spec.trials = 5;

  MarkdownTable table({"n", "p'", "ln N", "n^6ln n ln-size", "mean disc",
                       "frac sample=smallest", "frac exhausted"});
  for (size_t n : {size_t{1000}, size_t{2000}, size_t{4000}, size_t{8000}}) {
    const double ln_n = std::log(static_cast<double>(n));
    const double p_prime = ln_n / static_cast<double>(n);
    spec.n = n;
    spec.sketch.probability = p_prime;
    spec.sketch.log_universe = 2.0 * ln_n * ln_n + 4.0 * ln_n;
    spec.split = 1.0 - p_prime;
    spec.base_seed = MixSeed(0xE3, n);
    const GameReport report = PlayGame<BigUint>(spec);
    table.AddRow({std::to_string(n), FormatScientific(p_prime, 2),
                  FormatDouble(spec.sketch.log_universe, 1),
                  FormatDouble(std::log(AttackMinUniverseSize(n)), 1),
                  FormatDouble(report.discrepancy.mean, 4),
                  FormatDouble(report.FractionSampleIsSmallest(), 2),
                  FormatDouble(report.FractionExhausted(), 2)});
  }
  table.Print(std::cout);

  std::cout << "\n## Ablation: split parameter p' at n = 4000 "
               "(ln N fixed at 120)\n\n";
  MarkdownTable ab({"p'", "mean disc", "frac sample=smallest",
                    "frac exhausted"});
  const size_t n = 4000;
  const double p = std::log(static_cast<double>(n)) / n;
  spec.n = n;
  spec.sketch.probability = p;
  spec.sketch.log_universe = 120.0;
  for (double p_prime : {p, 4 * p, 16 * p, 64 * p, 0.5}) {
    spec.split = 1.0 - p_prime;
    spec.base_seed = 0xE3A;
    const GameReport report = PlayGame<BigUint>(spec);
    ab.AddRow({FormatScientific(p_prime, 2),
               FormatDouble(report.discrepancy.mean, 4),
               FormatDouble(report.FractionSampleIsSmallest(), 2),
               FormatDouble(report.FractionExhausted(), 2)});
  }
  ab.Print(std::cout);
  std::cout << "\nShape check: main table should show disc ~ 1 - p'n/n ~ 1, "
               "sample=smallest in every trial, no exhaustion. The ablation "
               "shows Fig. 3's p' = ln n/n choice conserves the universe "
               "budget: larger splits exhaust the range.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
