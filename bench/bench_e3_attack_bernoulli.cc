// Experiment E3 (Theorem 1.3 / Fig. 3, Bernoulli case): the attack drives
// BernoulliSample(p' = ln n / n) to a maximally unrepresentative state —
// the final sample is *exactly* the set of smallest stream elements and
// the prefix discrepancy approaches 1. Sweeps the stream length n (with
// the universe sized so the attack never exhausts, ln N = 2(ln n)^2 +
// 4 ln n) and, as an ablation, the split parameter p' of Fig. 3.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "adversary/bisection_adversary.h"
#include "core/adversarial_game.h"
#include "core/bernoulli_sampler.h"
#include "core/big_uint.h"
#include "core/sample_bounds.h"
#include "harness/table.h"
#include "harness/trial_runner.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {
namespace {

struct AttackOutcome {
  double discrepancy;
  bool sample_is_smallest;
  bool exhausted;
  size_t sample_size;
};

AttackOutcome AttackOnce(size_t n, double p, double p_prime,
                         double log_universe, uint64_t seed) {
  BisectionAdversaryBig adv(BigUint::ApproxExp(log_universe),
                            1.0 - p_prime);
  BernoulliSampler<BigUint> sampler(p, seed);
  const auto r = RunAdaptiveGame<BigUint>(
      sampler, adv, n,
      [](const std::vector<BigUint>& x, const std::vector<BigUint>& s) {
        return PrefixDiscrepancy(x, s);
      },
      0.25);
  AttackOutcome out;
  out.discrepancy = r.discrepancy;
  out.exhausted = adv.exhausted();
  out.sample_size = r.sample.size();
  auto sorted_stream = r.stream;
  std::sort(sorted_stream.begin(), sorted_stream.end());
  auto sorted_sample = r.sample;
  std::sort(sorted_sample.begin(), sorted_sample.end());
  out.sample_is_smallest = true;
  for (size_t i = 0; i < sorted_sample.size(); ++i) {
    if (!(sorted_sample[i] == sorted_stream[i])) {
      out.sample_is_smallest = false;
      break;
    }
  }
  return out;
}

void Run() {
  std::cout << "# E3: the Fig. 3 attack on BernoulliSample "
               "(Theorem 1.3, part 1)\n";
  std::cout << "p = p' = ln n / n; universe ln N = 2(ln n)^2 + 4 ln n "
               "(attack sustains all rounds); 5 trials/row\n\n";
  MarkdownTable table({"n", "p'", "ln N", "n^6ln n ln-size", "mean disc",
                       "frac sample=smallest", "frac exhausted"});
  for (size_t n : {size_t{1000}, size_t{2000}, size_t{4000}, size_t{8000}}) {
    const double ln_n = std::log(static_cast<double>(n));
    const double p_prime = ln_n / static_cast<double>(n);
    const double log_universe = 2.0 * ln_n * ln_n + 4.0 * ln_n;
    double disc_sum = 0.0;
    int smallest = 0, exhausted = 0;
    constexpr int kTrials = 5;
    for (int t = 0; t < kTrials; ++t) {
      const auto out = AttackOnce(n, p_prime, p_prime, log_universe,
                                  MixSeed(0xE3, n * 10 + t));
      disc_sum += out.discrepancy;
      smallest += out.sample_is_smallest;
      exhausted += out.exhausted;
    }
    table.AddRow({std::to_string(n), FormatScientific(p_prime, 2),
                  FormatDouble(log_universe, 1),
                  FormatDouble(std::log(AttackMinUniverseSize(n)), 1),
                  FormatDouble(disc_sum / kTrials, 4),
                  FormatDouble(static_cast<double>(smallest) / kTrials, 2),
                  FormatDouble(static_cast<double>(exhausted) / kTrials, 2)});
  }
  table.Print(std::cout);

  std::cout << "\n## Ablation: split parameter p' at n = 4000 "
               "(ln N fixed at 120)\n\n";
  MarkdownTable ab({"p'", "mean disc", "frac sample=smallest",
                    "frac exhausted"});
  const size_t n = 4000;
  const double p = std::log(static_cast<double>(n)) / n;
  for (double p_prime : {p, 4 * p, 16 * p, 64 * p, 0.5}) {
    double disc_sum = 0.0;
    int smallest = 0, exhausted = 0;
    constexpr int kTrials = 5;
    for (int t = 0; t < kTrials; ++t) {
      const auto out =
          AttackOnce(n, p, p_prime, 120.0, MixSeed(0xE3A, t));
      disc_sum += out.discrepancy;
      smallest += out.sample_is_smallest;
      exhausted += out.exhausted;
    }
    ab.AddRow({FormatScientific(p_prime, 2),
               FormatDouble(disc_sum / kTrials, 4),
               FormatDouble(static_cast<double>(smallest) / kTrials, 2),
               FormatDouble(static_cast<double>(exhausted) / kTrials, 2)});
  }
  ab.Print(std::cout);
  std::cout << "\nShape check: main table should show disc ~ 1 - p'n/n ~ 1, "
               "sample=smallest in every trial, no exhaustion. The ablation "
               "shows Fig. 3's p' = ln n/n choice conserves the universe "
               "budget: larger splits exhaust the range.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
