// Experiment E7 (Corollary 1.5): robust quantile sketching. An adaptive
// adversary watches the reservoir (through the erased SampleView hook —
// exactly what any registry kind exposes) and plays the continuous
// bisection attack on [0, 1]; we report the worst rank error over a grid
// of quantiles for (a) the reservoir sample sized by Corollary 1.5, (b) an
// undersized reservoir, (c) the deterministic GK summary, and (d) the
// randomized KLL sketch. GK is robust by determinism; the properly sized
// sample matches it (Cor. 1.5); the undersized sample is the weak link.
//
// Every sketch is driven and queried through the type-erased
// StreamSketch<double> surface (SketchRegistry + Quantile()): GK is not a
// built-in registry kind, so this file registers it as the custom kind
// "gk" — demonstrating that a bench-local adapter rides the same rails as
// the built-ins, capability hooks included.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <span>
#include <utility>
#include <vector>

#include "adversary/bisection_adversary.h"
#include "core/adversarial_game.h"
#include "core/check.h"
#include "core/sample_bounds.h"
#include "harness/table.h"
#include "harness/trial_runner.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "quantiles/exact_quantiles.h"
#include "quantiles/gk_sketch.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.1;
constexpr double kDelta = 0.1;
constexpr size_t kN = 30000;
constexpr size_t kTrials = 5;
// The adversary plays on [0,1] doubles, i.e. the universe of distinct
// representable values has ln|U| ~ 40 for the attack's working precision.
constexpr double kLogUniverse = 40.0;

const double kQuantiles[] = {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99};

// The deterministic GK summary behind the adapter surface; quantile
// queries flow through the Quantile/Rank capability hooks. GK summaries
// have no merge operation, so MergeFrom aborts — the capability system
// does not require it to be meaningful, only present.
class GkAdapter {
 public:
  explicit GkAdapter(GkSketch s) : s_(std::move(s)) {}
  void Insert(const double& x) { s_.Insert(x); }
  void InsertBatch(std::span<const double> xs) { s_.InsertBatch(xs); }
  void MergeFrom(const GkAdapter&) {
    RS_CHECK_MSG(false, "GK summaries do not merge");
  }
  size_t StreamSize() const { return s_.StreamSize(); }
  size_t SpaceItems() const { return s_.SpaceItems(); }
  std::string Name() const { return s_.Name(); }
  double Quantile(double q) const { return s_.Quantile(q); }
  double Rank(double x) const { return s_.RankFraction(x); }

 private:
  GkSketch s_;
};

void RegisterGk() {
  SketchRegistry<double>::Global().Register(
      "gk", [](const SketchConfig& c, uint64_t) {
        return StreamSketch<double>::Wrap(GkAdapter(GkSketch(c.eps)));
      });
}

// The continuous bisection attack, falling back to uniform filler once
// double precision is exhausted (so the stream stays statistically hard
// for the whole n rounds instead of degenerating to a constant).
class BisectionWithUniformFallback : public Adversary<double> {
 public:
  explicit BisectionWithUniformFallback(uint64_t seed)
      : bisection_(0.0, 1.0, 0.9), rng_(seed) {}

  double NextElement(std::span<const double> sample, size_t round)
      override {
    const double x = bisection_.NextElement(sample, round);
    if (bisection_.exhausted()) return rng_.NextDouble();
    return x;
  }

  void Observe(std::span<const double> sample, bool kept,
               size_t round) override {
    bisection_.Observe(sample, kept, round);
  }

  std::string Name() const override { return "bisection+uniform"; }

 private:
  BisectionAdversaryDouble bisection_;
  Rng rng_;
};

// Runs the adversarial stream against all sketches simultaneously: the
// adversary adapts to the *reservoir under test* (observed via the erased
// SampleView); the passenger sketch sees the same stream (it is a
// passenger, as in a real pipeline). Returns (worst rank error, space) of
// the queried sketch — the passenger when present, else the reservoir.
std::pair<double, size_t> WorstRankErrorOnce(size_t reservoir_k,
                                             const SketchConfig* passenger_config,
                                             uint64_t seed) {
  BisectionWithUniformFallback adv(MixSeed(seed, 101));
  SketchConfig victim_config;
  victim_config.kind = "reservoir";
  victim_config.capacity = reservoir_k;
  StreamSketch<double> victim =
      SketchRegistry<double>::Global().Create(victim_config, seed);
  StreamSketch<double> passenger;
  if (passenger_config != nullptr) {
    passenger = SketchRegistry<double>::Global().Create(*passenger_config,
                                                        MixSeed(seed, 3));
  }
  ExactQuantiles exact;
  for (size_t i = 1; i <= kN; ++i) {
    const double x = adv.NextElement(victim.SampleView().elements, i);
    victim.Insert(x);
    if (passenger.valid()) passenger.Insert(x);
    exact.Insert(x);
    const SketchSampleView<double> view = victim.SampleView();
    adv.Observe(view.elements, view.last_kept, i);
  }
  const StreamSketch<double>& queried =
      passenger.valid() ? passenger : victim;
  double worst = 0.0;
  for (double q : kQuantiles) {
    worst = std::max(worst, exact.RankError(q, queried.Quantile(q)));
  }
  return {worst, queried.SpaceItems()};
}

void Run() {
  RegisterGk();
  const size_t k_robust = ReservoirRobustK(kEps, kDelta, kLogUniverse);
  const size_t k_small = 10;
  std::cout << "# E7: robust quantile sketches under an adaptive adversary "
               "(Corollary 1.5)\n";
  std::cout << "n = " << kN << ", eps = " << kEps
            << ", Cor. 1.5 reservoir k = " << k_robust
            << "; adversary = continuous bisection watching the reservoir "
               "via SampleView(); all queries through the erased "
               "StreamSketch surface; "
            << kTrials << " trials/row\n\n";
  MarkdownTable table({"sketch", "space (items)", "mean worst rank err",
                       "max worst rank err", "meets eps"});

  SketchConfig gk_config;
  gk_config.kind = "gk";
  gk_config.eps = kEps / 2;
  SketchConfig kll_config;
  kll_config.kind = "kll";
  kll_config.capacity = 512;

  struct RowDef {
    const char* name;
    size_t reservoir_k;              // the victim the adversary watches
    const SketchConfig* passenger;   // nullptr = query the victim itself
  };
  const RowDef defs[] = {
      {"reservoir (Cor 1.5 k)", k_robust, nullptr},
      {"reservoir (undersized k=10)", k_small, nullptr},
      {"GK (deterministic, eps/2)", k_robust, &gk_config},
      {"KLL (k=512)", k_robust, &kll_config},
  };
  for (const auto& def : defs) {
    size_t space = 0;
    const auto stats = RunTrials(kTrials, 0xE7, [&](uint64_t seed) {
      const auto [err, space_items] =
          WorstRankErrorOnce(def.reservoir_k, def.passenger, seed);
      space = space_items;
      return err;
    });
    const bool meets = stats.FractionAtMost(kEps) >= 1.0 - 2 * kDelta;
    table.AddRow({def.name, std::to_string(space),
                  FormatDouble(stats.mean, 4), FormatDouble(stats.max, 4),
                  FormatBool(meets)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: the Cor. 1.5-sized reservoir and the "
               "deterministic GK summary meet the eps rank-error target "
               "under the adaptive stream; the undersized reservoir does "
               "not. (KLL sees the same stream but the adversary cannot "
               "observe its internal state in this protocol.)\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
