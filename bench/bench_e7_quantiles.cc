// Experiment E7 (Corollary 1.5): robust quantile sketching. An adaptive
// adversary watches the reservoir and plays the continuous bisection
// attack on [0, 1]; we report the worst rank error over a grid of
// quantiles for (a) the reservoir sample sized by Corollary 1.5, (b) an
// undersized reservoir, (c) the deterministic GK summary, and (d) the
// randomized KLL sketch. GK is robust by determinism; the properly sized
// sample matches it (Cor. 1.5); the undersized sample is the weak link.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/bisection_adversary.h"
#include "core/adversarial_game.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "harness/table.h"
#include "harness/trial_runner.h"
#include "quantiles/exact_quantiles.h"
#include "quantiles/gk_sketch.h"
#include "quantiles/kll_sketch.h"
#include "quantiles/sample_quantile_sketch.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.1;
constexpr double kDelta = 0.1;
constexpr size_t kN = 30000;
constexpr size_t kTrials = 5;
// The adversary plays on [0,1] doubles, i.e. the universe of distinct
// representable values has ln|U| ~ 40 for the attack's working precision.
constexpr double kLogUniverse = 40.0;

const double kQuantiles[] = {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99};

// The continuous bisection attack, falling back to uniform filler once
// double precision is exhausted (so the stream stays statistically hard
// for the whole n rounds instead of degenerating to a constant).
class BisectionWithUniformFallback : public Adversary<double> {
 public:
  explicit BisectionWithUniformFallback(uint64_t seed)
      : bisection_(0.0, 1.0, 0.9), rng_(seed) {}

  double NextElement(const std::vector<double>& sample, size_t round)
      override {
    const double x = bisection_.NextElement(sample, round);
    if (bisection_.exhausted()) return rng_.NextDouble();
    return x;
  }

  void Observe(const std::vector<double>& sample, bool kept,
               size_t round) override {
    bisection_.Observe(sample, kept, round);
  }

  std::string Name() const override { return "bisection+uniform"; }

 private:
  BisectionAdversaryDouble bisection_;
  Rng rng_;
};

// Runs the adversarial stream against all sketches simultaneously: the
// adversary adapts to the *reservoir under test*; the other sketches see
// the same stream (they are passengers, as in a real pipeline).
double WorstRankErrorOnce(size_t reservoir_k, QuantileSketch* passenger,
                          uint64_t seed) {
  BisectionWithUniformFallback adv(MixSeed(seed, 101));
  ReservoirSampler<double> reservoir(reservoir_k, seed);
  ExactQuantiles exact;
  for (size_t i = 1; i <= kN; ++i) {
    const double x = adv.NextElement(reservoir.sample(), i);
    reservoir.Insert(x);
    if (passenger != nullptr) passenger->Insert(x);
    exact.Insert(x);
    adv.Observe(reservoir.sample(), reservoir.last_kept(), i);
  }
  double worst = 0.0;
  if (passenger != nullptr) {
    for (double q : kQuantiles) {
      worst = std::max(worst, exact.RankError(q, passenger->Quantile(q)));
    }
    return worst;
  }
  std::vector<double> sample = reservoir.sample();
  std::sort(sample.begin(), sample.end());
  for (double q : kQuantiles) {
    const double m = static_cast<double>(sample.size());
    int64_t idx = static_cast<int64_t>(std::ceil(q * m)) - 1;
    idx = std::clamp(idx, int64_t{0},
                     static_cast<int64_t>(sample.size()) - 1);
    worst = std::max(
        worst, exact.RankError(q, sample[static_cast<size_t>(idx)]));
  }
  return worst;
}

void Run() {
  const size_t k_robust = ReservoirRobustK(kEps, kDelta, kLogUniverse);
  const size_t k_small = 10;
  std::cout << "# E7: robust quantile sketches under an adaptive adversary "
               "(Corollary 1.5)\n";
  std::cout << "n = " << kN << ", eps = " << kEps
            << ", Cor. 1.5 reservoir k = " << k_robust
            << "; adversary = continuous bisection watching the reservoir; "
            << kTrials << " trials/row\n\n";
  MarkdownTable table({"sketch", "space (items)", "mean worst rank err",
                       "max worst rank err", "meets eps"});

  struct RowDef {
    const char* name;
    size_t reservoir_k;  // 0 = use passenger sketch
    int passenger;       // 0 none, 1 gk, 2 kll
  };
  const RowDef defs[] = {
      {"reservoir (Cor 1.5 k)", k_robust, 0},
      {"reservoir (undersized k=10)", k_small, 0},
      {"GK (deterministic, eps/2)", k_robust, 1},
      {"KLL (k=512)", k_robust, 2},
  };
  for (const auto& def : defs) {
    size_t space = 0;
    const auto stats = RunTrials(kTrials, 0xE7, [&](uint64_t seed) {
      std::unique_ptr<QuantileSketch> passenger;
      if (def.passenger == 1) passenger = std::make_unique<GkSketch>(kEps / 2);
      if (def.passenger == 2) {
        passenger = std::make_unique<KllSketch>(512, MixSeed(seed, 3));
      }
      const double err =
          WorstRankErrorOnce(def.reservoir_k, passenger.get(), seed);
      space = passenger != nullptr ? passenger->SpaceItems()
                                   : def.reservoir_k;
      return err;
    });
    const bool meets = stats.FractionAtMost(kEps) >= 1.0 - 2 * kDelta;
    table.AddRow({def.name, std::to_string(space),
                  FormatDouble(stats.mean, 4), FormatDouble(stats.max, 4),
                  FormatBool(meets)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: the Cor. 1.5-sized reservoir and the "
               "deterministic GK summary meet the eps rank-error target "
               "under the adaptive stream; the undersized reservoir does "
               "not. (KLL sees the same stream but the adversary cannot "
               "observe its internal state in this protocol.)\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
