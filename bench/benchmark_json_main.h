#ifndef ROBUST_SAMPLING_BENCH_BENCHMARK_JSON_MAIN_H_
#define ROBUST_SAMPLING_BENCH_BENCHMARK_JSON_MAIN_H_

#include <cstdlib>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"

namespace robust_sampling {

// Shared main() body for the google-benchmark T-series binaries: like
// BENCHMARK_MAIN(), but defaults --benchmark_out to `json_path` (JSON
// format) so every run leaves a machine-readable result file for
// cross-PR perf tracking. The defaults are injected *before* the real
// command line, and google-benchmark's flag parsing is last-wins, so
// explicit flags still override.
//
// RS_BENCH_SMOKE: when set (non-empty), caps --benchmark_min_time at
// 0.01s so CI can run the full T-series as a seconds-long smoke suite
// that still produces BENCH_*.json artifacts. An explicit
// --benchmark_min_time on the command line wins over the env var.
inline int RunBenchmarksWithJsonDefault(const char* json_path, int argc,
                                        char** argv) {
  std::string out_flag = std::string("--benchmark_out=") + json_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  std::string min_time_flag = "--benchmark_min_time=0.01";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(fmt_flag.data());
  const char* smoke = std::getenv("RS_BENCH_SMOKE");
  if (smoke != nullptr && *smoke != '\0') {
    args.push_back(min_time_flag.data());
  }
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_BENCH_BENCHMARK_JSON_MAIN_H_
