#ifndef ROBUST_SAMPLING_BENCH_BENCHMARK_JSON_MAIN_H_
#define ROBUST_SAMPLING_BENCH_BENCHMARK_JSON_MAIN_H_

#include <string>
#include <vector>

#include "benchmark/benchmark.h"

namespace robust_sampling {

// Shared main() body for the google-benchmark T-series binaries: like
// BENCHMARK_MAIN(), but defaults --benchmark_out to `json_path` (JSON
// format) so every run leaves a machine-readable result file for
// cross-PR perf tracking. The defaults are injected *before* the real
// command line, and google-benchmark's flag parsing is last-wins, so
// explicit flags still override.
inline int RunBenchmarksWithJsonDefault(const char* json_path, int argc,
                                        char** argv) {
  std::string out_flag = std::string("--benchmark_out=") + json_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(fmt_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_BENCH_BENCHMARK_JSON_MAIN_H_
