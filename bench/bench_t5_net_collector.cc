// T5: loopback aggregation-tier fleet — TCP snapshot shipping into a live
// Collector, measured end to end (serialize is excluded; the clock covers
// frame send + collector revive + merged-view rebuild + ack).
//
// Row families by the `op` column:
//
//  * op = "net/ship": S shippers with disjoint stream slices deliver
//    their snapshots to one collector, then one shipper re-ships its
//    snapshot R times; MiB/s is acked ship throughput including the
//    collector's per-ship merge rebuild. Gated by bench_diff --gate t5.
//  * op = "net/query": round-trip latency of the erased query surface
//    over the same connection (CollectorClient), ms per query.
//
// Every fleet point *asserts* the collector's answers against a
// single-process sketch over the identical stream — bit-exact for
// CountMin, within the 2*eps rank bound for kll quantiles (same
// acceptance bench_t4 applies to its merge).
//
// Writes BENCH_t5_net.json; RS_BENCH_SMOKE=1 shrinks the stream for CI.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/random.h"
#include "harness/table.h"
#include "net/collector.h"
#include "net/snapshot_shipper.h"
#include "obs/metrics.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "wire/codec.h"
#include "wire/snapshot.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.05;
constexpr uint64_t kUniverse = 4096;
constexpr uint64_t kBaseSeed = 0x7A55;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<int64_t> MakeStream(size_t n) {
  Rng rng(kBaseSeed);
  std::vector<int64_t> stream;
  stream.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    stream.push_back(static_cast<int64_t>(rng.NextBelow(kUniverse)) + 1);
  }
  return stream;
}

SketchConfig ConfigFor(const std::string& kind, uint64_t seed) {
  SketchConfig config;
  config.kind = kind;
  config.eps = kEps;
  config.delta = 0.05;
  config.universe_size = kUniverse;
  config.capacity = 1024;
  config.width = 2048;
  config.depth = 4;
  config.seed = seed;
  return config;
}

StreamSketch<int64_t> BuildSketch(const SketchConfig& config,
                                  std::span<const int64_t> slice) {
  auto sketch = SketchRegistry<int64_t>::Global().Create(config);
  sketch.InsertBatch(slice);
  return sketch;
}

std::vector<uint8_t> SnapshotBytes(const StreamSketch<int64_t>& sketch,
                                   const SketchConfig& config) {
  wire::BufferSink sink;
  RS_CHECK_MSG(wire::WriteSnapshot(sketch, config, sink),
               "snapshot serialization failed");
  return sink.TakeBytes();
}

// Same acceptance as bench_t4: both views summarize the identical stream.
double AssertAccuracy(const std::string& kind,
                      const net::Collector<int64_t>& collector,
                      const StreamSketch<int64_t>& single) {
  double worst = 0.0;
  if (kind == "count_min") {
    for (uint64_t x = 1; x <= kUniverse; x += 16) {
      const auto merged =
          collector.EstimateFrequency(static_cast<int64_t>(x));
      RS_CHECK(merged.has_value());
      const double diff = std::abs(
          *merged - single.EstimateFrequency(static_cast<int64_t>(x)));
      worst = std::max(worst, diff);
    }
    RS_CHECK_MSG(worst == 0.0,
                 "collector CountMin diverged from single-process");
  } else {
    for (double q = 0.05; q < 1.0; q += 0.05) {
      const auto merged = collector.Quantile(q);
      RS_CHECK(merged.has_value());
      // Compare through ranks: each side is an eps-approximation.
      const double diff =
          std::abs(single.Rank(*merged) - q);
      worst = std::max(worst, diff);
    }
    RS_CHECK_MSG(worst <= 2.0 * kEps,
                 "collector quantiles violate the 2*eps rank bound");
  }
  return worst;
}

size_t RepsFor(size_t snapshot_bytes) {
  constexpr size_t kTargetBytes = size_t{4} * 1024 * 1024;
  const size_t reps = (kTargetBytes + snapshot_bytes - 1) / snapshot_bytes;
  return std::clamp<size_t>(reps, 4, 64);
}

void Run(bool with_metrics, const std::string& trace_out) {
  const bool smoke = []() {
    const char* env = std::getenv("RS_BENCH_SMOKE");
    return env != nullptr && *env != '\0';
  }();
  const size_t n = smoke ? 200'000 : 2'000'000;
  const auto stream = MakeStream(n);

  std::cout << "# T5: loopback TCP fleet -> collector (src/net/)\n";
  std::cout << "net/ship rows: acked snapshot throughput into a live "
               "collector (send + revive + merged-view rebuild + ack, "
               "measured at the shipper). net/query rows: query RTT over "
               "the same protocol. Every fleet point asserts "
               "collector-vs-single accuracy. n = "
            << n << ", eps = " << kEps << ".\n\n";

  MarkdownTable table({"op", "kind", "shippers", "n", "KiB", "ms", "MiB/s",
                       "worst |merged - single|", "bound"});

  for (const std::string kind : {std::string("count_min"),
                                 std::string("kll")}) {
    const SketchConfig single_config = ConfigFor(kind, kBaseSeed);
    const auto single = BuildSketch(single_config, stream);

    for (size_t shippers : {size_t{1}, size_t{2}, size_t{4}}) {
      net::Collector<int64_t> collector(net::CollectorOptions{});
      RS_CHECK_MSG(collector.Start(), "collector failed to start");

      // Fleet phase: each shipper covers a disjoint slice; CountMin
      // shares config.seed (hash mergeability), the rest get independent
      // per-shipper seeds — the ShardedPipeline convention.
      const size_t slice_len = stream.size() / shippers;
      std::vector<std::unique_ptr<net::SnapshotShipper>> fleet;
      std::vector<std::vector<uint8_t>> frames(shippers);
      size_t frame_bytes = 0;
      for (size_t s = 0; s < shippers; ++s) {
        const SketchConfig config =
            kind == "count_min"
                ? ConfigFor(kind, kBaseSeed)
                : ConfigFor(kind, MixSeed(kBaseSeed, 1000 + s));
        const size_t off = s * slice_len;
        const size_t len =
            s + 1 == shippers ? stream.size() - off : slice_len;
        frames[s] = SnapshotBytes(
            BuildSketch(config, std::span(stream).subspan(off, len)),
            config);
        frame_bytes += frames[s].size();
        net::ShipperOptions options;
        options.port = collector.port();
        options.shipper_id = s + 1;
        auto shipper = std::make_unique<net::SnapshotShipper>(options);
        shipper->Start();
        fleet.push_back(std::move(shipper));
      }

      const auto fleet_start = Clock::now();
      for (size_t s = 0; s < shippers; ++s) {
        const size_t off = s * slice_len;
        const size_t len =
            s + 1 == shippers ? stream.size() - off : slice_len;
        fleet[s]->Offer(frames[s], /*total_ingested=*/len);
      }
      for (auto& shipper : fleet) {
        RS_CHECK_MSG(shipper->WaitUntilDrained(60'000),
                     "fleet ship did not drain");
      }
      const double fleet_s = SecondsSince(fleet_start);
      const double worst = AssertAccuracy(kind, collector, single);

      // Sustained phase: shipper 0 re-ships its (cumulative) snapshot R
      // times — the steady-state "periodic ship" path, every rep acked
      // and merged.
      const size_t reps = RepsFor(frames[0].size());
      const auto sustained_start = Clock::now();
      for (size_t r = 0; r < reps; ++r) {
        fleet[0]->Offer(frames[0]);
        RS_CHECK_MSG(fleet[0]->WaitUntilDrained(60'000),
                     "sustained ship did not drain");
      }
      const double sustained_s = SecondsSince(sustained_start);
      const double sustained_mib = static_cast<double>(frames[0].size()) *
                                   static_cast<double>(reps) /
                                   (1024.0 * 1024.0);
      for (auto& shipper : fleet) shipper->Stop();

      table.AddRow(
          {"net/ship", kind, std::to_string(shippers), std::to_string(n),
           FormatDouble(static_cast<double>(frame_bytes) / 1024.0, 1),
           FormatDouble(sustained_s * 1e3, 2),
           FormatDouble(sustained_mib / sustained_s, 1),
           FormatDouble(worst, 4),
           kind == "count_min" ? "exact" : FormatDouble(2 * kEps, 2)});

      // Query RTT over the wire, after the fleet merge settled.
      if (shippers == 1) {
        net::CollectorClient<int64_t> client;
        RS_CHECK(client.Connect("127.0.0.1", collector.port()));
        const size_t queries = smoke ? 200 : 2000;
        const auto query_start = Clock::now();
        for (size_t i = 0; i < queries; ++i) {
          double out = 0.0;
          if (kind == "count_min") {
            RS_CHECK(client.EstimateFrequency(
                static_cast<int64_t>(1 + i % kUniverse), &out));
          } else {
            RS_CHECK(client.Quantile(
                static_cast<double>(i % 99 + 1) / 100.0, &out));
          }
        }
        const double query_s = SecondsSince(query_start);
        table.AddRow({"net/query", kind, "1", std::to_string(queries), "-",
                      FormatDouble(query_s * 1e3 /
                                       static_cast<double>(queries),
                                   4),
                      "-", "-", "-"});
      }
      collector.Stop();
      (void)fleet_s;
    }
  }

  table.Print(std::cout);
  const std::vector<std::pair<std::string, std::string>> extra_meta = {
      {"stream_length", std::to_string(n)},
      {"smoke", smoke ? "true" : "false"},
  };
  std::string metrics_json;
  if (with_metrics) {
    metrics_json = obs::MetricRegistry::Global().ToJson();
  }
  WriteBenchJson("t5_net", table, extra_meta,
                 with_metrics ? &metrics_json : nullptr);
  if (!trace_out.empty()) {
    // Whole-run chrome-trace export: load the file in Perfetto or
    // chrome://tracing to see the ship/merge spans per thread.
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    RS_CHECK_MSG(f != nullptr, "cannot open --trace-out file");
    const std::string trace =
        obs::FlightRecorder::Global().DumpChromeTraceJson();
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::cout << "\nchrome-trace written to " << trace_out << "\n";
  }
  std::cout << "\nOK: collector-vs-single accuracy asserted for every "
               "fleet point.\n";
}

}  // namespace
}  // namespace robust_sampling

int main(int argc, char** argv) {
  bool with_metrics = false;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--metrics") {
      with_metrics = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    }
  }
  robust_sampling::Run(with_metrics, trace_out);
  return 0;
}
