// T2: throughput microbenchmarks for the quantile and heavy-hitter
// substrates (google-benchmark): GK, KLL, sample-based quantiles;
// Misra-Gries, SpaceSaving, CountMin, sample-based heavy hitters.

#include <cstdint>
#include <vector>

#include "benchmark/benchmark.h"
#include "benchmark_json_main.h"
#include "heavy/count_min.h"
#include "heavy/misra_gries.h"
#include "heavy/sample_heavy_hitters.h"
#include "heavy/space_saving.h"
#include "quantiles/gk_sketch.h"
#include "quantiles/kll_sketch.h"
#include "quantiles/sample_quantile_sketch.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

constexpr size_t kStreamLen = 1 << 16;

const std::vector<double>& DoubleStream() {
  static const std::vector<double> stream =
      UniformDoubleStream(kStreamLen, 0.0, 1.0, 11);
  return stream;
}

const std::vector<int64_t>& ZipfStream() {
  static const std::vector<int64_t> stream =
      ZipfIntStream(kStreamLen, 100000, 1.1, 13);
  return stream;
}

void BM_GkSketchInsert(benchmark::State& state) {
  const double eps = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    GkSketch g(eps);
    for (double v : DoubleStream()) g.Insert(v);
    benchmark::DoNotOptimize(g.SpaceItems());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kStreamLen));
}
BENCHMARK(BM_GkSketchInsert)->Name("t2/gk_insert")->Arg(20)->Arg(100);

void BM_KllSketchInsert(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    KllSketch s(k, 42);
    for (double v : DoubleStream()) s.Insert(v);
    benchmark::DoNotOptimize(s.SpaceItems());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kStreamLen));
}
BENCHMARK(BM_KllSketchInsert)->Name("t2/kll_insert")->Arg(128)->Arg(512);

void BM_SampleQuantileInsert(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    SampleQuantileSketch s(k, 42);
    for (double v : DoubleStream()) s.Insert(v);
    benchmark::DoNotOptimize(s.SpaceItems());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kStreamLen));
}
BENCHMARK(BM_SampleQuantileInsert)->Name("t2/sample_quantile_insert")->Arg(512)->Arg(4096);

void BM_MisraGriesInsert(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    MisraGries mg(k);
    for (int64_t v : ZipfStream()) mg.Insert(v);
    benchmark::DoNotOptimize(mg.SpaceItems());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kStreamLen));
}
BENCHMARK(BM_MisraGriesInsert)->Name("t2/misra_gries_insert")->Arg(64)->Arg(1024);

void BM_SpaceSavingInsert(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    SpaceSaving ss(k);
    for (int64_t v : ZipfStream()) ss.Insert(v);
    benchmark::DoNotOptimize(ss.SpaceItems());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kStreamLen));
}
BENCHMARK(BM_SpaceSavingInsert)->Name("t2/space_saving_insert")->Arg(64)->Arg(1024);

void BM_CountMinInsert(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    CountMinSketch cm(width, 4, 42);
    for (int64_t v : ZipfStream()) cm.Insert(v);
    benchmark::DoNotOptimize(cm.StreamSize());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kStreamLen));
}
BENCHMARK(BM_CountMinInsert)->Name("t2/count_min_insert")->Arg(256)->Arg(4096);

void BM_SampleHeavyHittersInsert(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    SampleHeavyHitters shh(k, 42);
    for (int64_t v : ZipfStream()) shh.Insert(v);
    benchmark::DoNotOptimize(shh.SpaceItems());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kStreamLen));
}
BENCHMARK(BM_SampleHeavyHittersInsert)->Name("t2/sample_heavy_hitters_insert")->Arg(1024)->Arg(8192);

void BM_GkSketchQuery(benchmark::State& state) {
  GkSketch g(0.01);
  for (double v : DoubleStream()) g.Insert(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.Quantile(0.5));
  }
}
BENCHMARK(BM_GkSketchQuery)->Name("t2/gk_query");

void BM_KllSketchQuery(benchmark::State& state) {
  KllSketch s(512, 42);
  for (double v : DoubleStream()) s.Insert(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Quantile(0.5));
  }
}
BENCHMARK(BM_KllSketchQuery)->Name("t2/kll_query");

}  // namespace
}  // namespace robust_sampling

int main(int argc, char** argv) {
  return robust_sampling::RunBenchmarksWithJsonDefault("BENCH_t2.json",
                                                       argc, argv);
}
