// Loopback shipper -> collector kill -9 soak (CI release job, wrapped in
// `timeout`). Sequence, repeated for several cycles:
//
//   1. fork a collector child (BEFORE this process creates any threads)
//      that checkpoints after every accepted snapshot;
//   2. ship a cumulative snapshot, wait for the ack;
//   3. SIGKILL the collector mid-run — no destructors, no flush;
//   4. restart the collector in-process on the same port + checkpoint,
//      verify it restored the pre-kill answers exactly;
//   5. grow the stream, re-ship cumulative state through the reconnect
//      path, and verify queries agree with a single-process sketch.
//
// Exits non-zero on any divergence or timeout-worthy hang. Not a
// measurement — a survival harness.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/random.h"
#include "net/collector.h"
#include "net/snapshot_shipper.h"
#include "net/socket_io.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "wire/codec.h"
#include "wire/snapshot.h"

namespace robust_sampling {
namespace {

constexpr uint64_t kSeed = 0x50AC;
constexpr uint64_t kUniverse = 2048;

SketchConfig Config() {
  SketchConfig config;
  config.kind = "kll";
  config.capacity = 512;
  config.universe_size = kUniverse;
  config.seed = kSeed;
  return config;
}

std::vector<int64_t> GrowStream(std::vector<int64_t> base, size_t more,
                                uint64_t seed) {
  Rng rng(seed);
  base.reserve(base.size() + more);
  for (size_t i = 0; i < more; ++i) {
    base.push_back(static_cast<int64_t>(rng.NextBelow(kUniverse)) + 1);
  }
  return base;
}

StreamSketch<int64_t> BuildSketch(const std::vector<int64_t>& stream) {
  auto sketch = SketchRegistry<int64_t>::Global().Create(Config());
  sketch.InsertBatch(stream);
  return sketch;
}

std::vector<uint8_t> SnapshotBytes(const StreamSketch<int64_t>& sketch) {
  wire::BufferSink sink;
  if (!wire::WriteSnapshot(sketch, Config(), sink)) {
    std::cerr << "FATAL: snapshot serialization failed\n";
    std::exit(1);
  }
  return sink.TakeBytes();
}

bool ShipOnce(uint16_t port, const std::vector<uint8_t>& frame) {
  net::ShipperOptions options;
  options.port = port;
  options.shipper_id = 1;
  options.backoff_initial_ms = 5;
  options.backoff_max_ms = 200;
  net::SnapshotShipper shipper(options);
  shipper.Start();
  shipper.Offer(frame);
  const bool drained = shipper.WaitUntilDrained(30'000);
  shipper.Stop();
  return drained;
}

bool NearlyEqual(double a, double b) { return std::abs(a - b) < 1e-12; }

int RunSoak() {
  const std::string path = []() {
    const char* dir = std::getenv("TMPDIR");
    return std::string(dir != nullptr ? dir : "/tmp") + "/net_soak.ck";
  }();
  std::remove(path.c_str());

  uint16_t port = 0;
  {
    const int fd = net::ListenLoopback(0, &port);
    if (fd < 0) {
      std::cerr << "FATAL: cannot reserve loopback port\n";
      return 1;
    }
    close(fd);
  }

  // Fork the first collector before any thread exists in this process.
  int ready_pipe[2];
  if (pipe(ready_pipe) != 0) return 1;
  const pid_t child = fork();
  if (child < 0) return 1;
  if (child == 0) {
    close(ready_pipe[0]);
    net::CollectorOptions options;
    options.port = port;
    options.checkpoint_path = path;
    net::Collector<int64_t> collector(options);
    if (!collector.Start()) _exit(1);
    const char ready = 'R';
    if (write(ready_pipe[1], &ready, 1) != 1) _exit(1);
    for (;;) pause();
  }
  close(ready_pipe[1]);
  char ready = 0;
  if (read(ready_pipe[0], &ready, 1) != 1) {
    std::cerr << "FATAL: collector child failed to start\n";
    return 1;
  }
  close(ready_pipe[0]);

  std::vector<int64_t> stream;
  constexpr int kCycles = 3;
  constexpr size_t kGrowth = 50'000;

  // Cycle 0 runs against the forked child; later cycles kill and restart
  // the collector in-process (fork-once keeps the sanitizers happy).
  stream = GrowStream(std::move(stream), kGrowth, kSeed);
  StreamSketch<int64_t> reference = BuildSketch(stream);
  if (!ShipOnce(port, SnapshotBytes(reference))) {
    std::cerr << "FATAL: initial ship did not drain\n";
    return 1;
  }

  if (kill(child, SIGKILL) != 0) return 1;
  int wstatus = 0;
  if (waitpid(child, &wstatus, 0) != child || !WIFSIGNALED(wstatus)) {
    std::cerr << "FATAL: collector child did not die of SIGKILL\n";
    return 1;
  }
  std::cout << "cycle 0: collector kill -9'd after "
            << stream.size() << " elements shipped\n";

  for (int cycle = 1; cycle <= kCycles; ++cycle) {
    // Restart against the surviving checkpoint; pre-kill answers must be
    // restored exactly (same snapshot bytes -> identical sketch).
    net::CollectorOptions options;
    options.port = port;
    options.checkpoint_path = path;
    net::Collector<int64_t> collector(options);
    if (!collector.Start()) {
      std::cerr << "FATAL: collector restart failed (cycle " << cycle
                << ")\n";
      return 1;
    }
    for (double q : {0.25, 0.5, 0.75}) {
      const auto restored = collector.Quantile(q);
      if (!restored.has_value() ||
          !NearlyEqual(*restored, reference.Quantile(q))) {
        std::cerr << "FATAL: restored quantile(" << q
                  << ") diverged from pre-kill state (cycle " << cycle
                  << ")\n";
        return 1;
      }
    }

    // Grow the stream, re-ship cumulative state, verify over the wire.
    stream = GrowStream(std::move(stream), kGrowth,
                        MixSeed(kSeed, static_cast<uint64_t>(cycle)));
    reference = BuildSketch(stream);
    if (!ShipOnce(port, SnapshotBytes(reference))) {
      std::cerr << "FATAL: re-ship did not drain (cycle " << cycle << ")\n";
      return 1;
    }
    net::CollectorClient<int64_t> client;
    if (!client.Connect("127.0.0.1", port)) {
      std::cerr << "FATAL: query client cannot connect (cycle " << cycle
                << ")\n";
      return 1;
    }
    for (double q : {0.1, 0.5, 0.9}) {
      double over_wire = -1.0;
      if (!client.Quantile(q, &over_wire) ||
          !NearlyEqual(over_wire, reference.Quantile(q))) {
        std::cerr << "FATAL: post-re-ship quantile(" << q
                  << ") diverged (cycle " << cycle << ")\n";
        return 1;
      }
    }
    collector.Stop();  // the next cycle's "kill": abrupt state loss is
                       // covered by cycle 0; later cycles soak restarts
    std::cout << "cycle " << cycle << ": restored + re-shipped + verified ("
              << stream.size() << " elements)\n";
  }

  std::remove(path.c_str());
  std::cout << "OK: survived kill -9 and " << kCycles
            << " restart cycles with exact restored answers\n";
  return 0;
}

}  // namespace
}  // namespace robust_sampling

int main() { return robust_sampling::RunSoak(); }
