// Experiment E12 (Section 1.2, "Sampling in modern data-processing
// systems"): K query servers with uniform random routing. Each server's
// substream is a Bernoulli(1/K) sample of the query stream, so Theorem 1.2
// predicts every server stays representative — even against an adversary
// that observes the routing.
//
// This experiment runs through the AttackLab GameDriver: by exchangeability
// every server has the same substream law, so server 0's marginal — a
// Bernoulli(1/K) sampler whose "kept" bit is "the query landed on server
// 0" — is the per-server object under study. The adaptive arm replays the
// Fig. 3 bisection strategy against that sampler (exactly the
// routing-observer of the old hand-rolled harness); the static arm plays a
// fixed Zipf workload through a runtime-registered adversary. Both score
// prefix (KS) discrepancy of the substream against the full stream, with
// the driver's seeded, parallel trial loop.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>

#include "attacklab/adversary_registry.h"
#include "attacklab/game_driver.h"
#include "attacklab/game_spec.h"
#include "core/random.h"
#include "core/sample_bounds.h"
#include "harness/table.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.1;
constexpr double kDelta = 0.1;
constexpr size_t kTrials = 4;
constexpr uint64_t kBaseSeed = 0xE12;

/// The spec for one (K, n, workload) cell: a Bernoulli(1/K) sampler (=
/// server 0's routing marginal) scored by prefix discrepancy at kEps.
GameSpec SpecFor(int servers, size_t n, const std::string& adversary) {
  GameSpec spec;
  spec.sketch.kind = "bernoulli";
  spec.sketch.probability = 1.0 / static_cast<double>(servers);
  // The adaptive arm bisects over the routing-key universe {1..2^62}
  // (ln N = 43), matching the original routing-observer's key space.
  spec.sketch.universe_size = uint64_t{1} << 62;
  spec.sketch.expected_stream_size = n;
  spec.sketch.eps = kEps;
  spec.sketch.delta = kDelta;
  spec.adversary = adversary;
  // Fig. 3's split for a Bernoulli(1/K) target: keep narrowing while a
  // fraction 1 - 1/K of the range stays unrouted-to-server-0.
  spec.split = 1.0 - 1.0 / static_cast<double>(servers);
  spec.n = n;
  spec.eps = kEps;
  spec.discrepancy = DiscrepancyKind::kPrefix;
  spec.schedule = ScheduleKind::kFinalOnly;
  spec.trials = kTrials;
  spec.base_seed = kBaseSeed;
  return spec;
}

void Run() {
  // The static workload as an adversary: a Zipf(1.1) query stream fixed
  // before the game — the classical non-adaptive traffic model, routed
  // through the same driver so both arms share seeding and scoring.
  AdversaryRegistry<int64_t>::Global().Register(
      "e12-static-zipf", [](const GameSpec& spec, uint64_t seed) {
        return AnyAdversary<int64_t>::Wrap(StaticAdversary<int64_t>(
            ZipfIntStream(spec.n, 100000, 1.1, MixSeed(seed, 61))));
      });

  std::cout << "# E12: distributed query routing as Bernoulli sampling "
               "(Section 1.2)\n";
  std::cout << "Each of K servers receives a Bernoulli(1/K) substream; "
               "KS discrepancy of server 0's substream vs the full stream "
               "(per-server law by exchangeability), via the AttackLab "
               "GameDriver. "
            << kTrials << " trials/row, eps = " << kEps << ".\n\n";
  MarkdownTable table({"K", "n", "n/K", "workload", "mean disc", "max disc",
                       "Pr[disc<=eps]", "server representative"});
  for (int servers : {4, 16, 64}) {
    for (size_t n : {size_t{20000}, size_t{200000}}) {
      for (const char* adversary : {"e12-static-zipf", "bisection"}) {
        const GameSpec spec = SpecFor(servers, n, adversary);
        const GameReport report = PlayGame<int64_t>(spec);
        table.AddRow(
            {std::to_string(servers), std::to_string(n),
             std::to_string(n / static_cast<size_t>(servers)),
             adversary == std::string("bisection")
                 ? "adaptive routing-observer"
                 : "static zipf",
             FormatDouble(report.discrepancy.mean, 4),
             FormatDouble(report.discrepancy.max, 4),
             FormatDouble(report.FractionRobust(kEps), 2),
             FormatBool(report.discrepancy.max <= kEps)});
      }
    }
  }
  table.Print(std::cout);
  // Theory line: per-server substream size needed for eps-representation
  // w.r.t. the prefix family over the adversary's 2^62 universe.
  const double p_needed =
      BernoulliRobustP(kEps, kDelta, 62.0 * std::log(2.0), 200000);
  std::cout << "\nTheory: with n = 200000 a server needs routing fraction "
               "1/K >= "
            << FormatDouble(p_needed, 4)
            << " (Thm 1.2, ln N = 43) to be provably robust at eps = "
            << kEps << ".\n";
  std::cout << "Shape check: discrepancy shrinks ~1/sqrt(n/K); the adaptive "
               "routing-observer does no better than static traffic once "
               "n/K clears the bound — random routing is not a risk.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
