// Experiment E12 (Section 1.2, "Sampling in modern data-processing
// systems"): K query servers with uniform random routing. Each server's
// substream is a Bernoulli(1/K) sample of the query stream, so Theorem 1.2
// predicts every server stays representative — even against an adversary
// that observes the routing (here: the bisection attack replayed against
// server 0, treating "landed on server 0" as "sampled"). Sweeps K and n.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "adversary/bisection_adversary.h"
#include "core/sample_bounds.h"
#include "distributed/load_balancer.h"
#include "harness/table.h"
#include "harness/trial_runner.h"
#include "setsystem/discrepancy.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.1;
constexpr double kDelta = 0.1;
constexpr size_t kTrials = 4;

// Worst per-server KS discrepancy with a static Zipf workload.
double StaticTrial(int servers, size_t n, uint64_t seed) {
  LoadBalancedCluster cluster(servers, seed);
  for (int64_t q : ZipfIntStream(n, 100000, 1.1, MixSeed(seed, 61))) {
    cluster.Route(q);
  }
  const auto discs = cluster.PerServerPrefixDiscrepancy();
  return *std::max_element(discs.begin(), discs.end());
}

// Adaptive routing-observer: plays the Fig. 3 bisection strategy against
// server 0 ("sampled" = query landed on server 0) and reports server 0's
// substream discrepancy.
double AdaptiveTrial(int servers, size_t n, uint64_t seed) {
  LoadBalancedCluster cluster(servers, seed);
  BisectionAdversaryInt64 adv(int64_t{1} << 62,
                              1.0 - 1.0 / static_cast<double>(servers));
  for (size_t i = 1; i <= n; ++i) {
    const int64_t q = adv.NextElement(cluster.ServerStream(0), i);
    const int server = cluster.Route(q);
    adv.Observe(cluster.ServerStream(0), server == 0, i);
  }
  return PrefixDiscrepancy(cluster.FullStream(), cluster.ServerStream(0));
}

void Run() {
  std::cout << "# E12: distributed query routing as Bernoulli sampling "
               "(Section 1.2)\n";
  std::cout << "Each of K servers receives a Bernoulli(1/K) substream; "
               "worst per-server KS discrepancy vs the full stream. "
            << kTrials << " trials/row, eps = " << kEps << ".\n\n";
  MarkdownTable table({"K", "n", "n/K", "workload", "mean worst disc",
                       "max worst disc", "all servers representative"});
  for (int servers : {4, 16, 64}) {
    for (size_t n : {size_t{20000}, size_t{200000}}) {
      for (int workload = 0; workload < 2; ++workload) {
        const auto stats = RunTrials(kTrials, 0xE12, [&](uint64_t seed) {
          return workload == 0 ? StaticTrial(servers, n, seed)
                               : AdaptiveTrial(servers, n, seed);
        });
        table.AddRow(
            {std::to_string(servers), std::to_string(n),
             std::to_string(n / static_cast<size_t>(servers)),
             workload == 0 ? "static zipf" : "adaptive routing-observer",
             FormatDouble(stats.mean, 4), FormatDouble(stats.max, 4),
             FormatBool(stats.max <= kEps)});
      }
    }
  }
  table.Print(std::cout);
  // Theory line: per-server substream size needed for eps-representation
  // w.r.t. the prefix family over the adversary's 2^62 universe.
  const double p_needed =
      BernoulliRobustP(kEps, kDelta, 62.0 * std::log(2.0), 200000);
  std::cout << "\nTheory: with n = 200000 a server needs routing fraction "
               "1/K >= "
            << FormatDouble(p_needed, 4)
            << " (Thm 1.2, ln N = 43) to be provably robust at eps = "
            << kEps << ".\n";
  std::cout << "Shape check: discrepancy shrinks ~1/sqrt(n/K); the adaptive "
               "routing-observer does no better than static traffic once "
               "n/K clears the bound — random routing is not a risk.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
