// Experiment E4 (Theorem 1.3, reservoir case): the Fig. 3 attack against
// ReservoirSample(k). The paper proves that with probability >= 1/2 the
// number of ever-accepted elements k' is at most 4 k ln n, all accepted
// elements are the k' smallest in the stream, and the final sample (a
// subset of them) has prefix discrepancy > 1/2. Sweeps k and n.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "adversary/bisection_adversary.h"
#include "core/adversarial_game.h"
#include "core/big_uint.h"
#include "core/reservoir_sampler.h"
#include "harness/table.h"
#include "harness/trial_runner.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {
namespace {

struct Outcome {
  double discrepancy;
  size_t ever_accepted;  // k'
  bool exhausted;
};

Outcome AttackOnce(size_t k, size_t n, double log_universe, uint64_t seed) {
  const double k_accepted_est =
      static_cast<double>(k) *
      (1.0 + std::log(static_cast<double>(n) / static_cast<double>(k)));
  const double split =
      std::min(1.0 - 1e-6, std::max(0.5, 1.0 - k_accepted_est / n));
  BisectionAdversaryBig adv(BigUint::ApproxExp(log_universe), split);
  ReservoirSampler<BigUint> sampler(k, seed);
  Outcome out{};
  size_t accepted = 0;
  std::vector<BigUint> stream;
  stream.reserve(n);
  for (size_t i = 1; i <= n; ++i) {
    BigUint x = adv.NextElement(sampler.sample(), i);
    sampler.Insert(x);
    stream.push_back(std::move(x));
    accepted += sampler.last_kept();
    adv.Observe(sampler.sample(), sampler.last_kept(), i);
  }
  out.ever_accepted = accepted;
  out.exhausted = adv.exhausted();
  out.discrepancy = PrefixDiscrepancy(stream, sampler.sample());
  return out;
}

void Run() {
  std::cout << "# E4: the Fig. 3 attack on ReservoirSample "
               "(Theorem 1.3, part 2)\n";
  std::cout << "universe ln N = 600 (sustains all configurations); "
               "5 trials/row\n\n";
  MarkdownTable table({"k", "n", "mean k'", "4k ln n", "mean disc",
                       "frac disc>1/2", "frac exhausted"});
  for (size_t k : {size_t{2}, size_t{4}, size_t{8}, size_t{16}}) {
    for (size_t n : {size_t{1000}, size_t{4000}}) {
      constexpr int kTrials = 5;
      double disc_sum = 0.0, kprime_sum = 0.0;
      int wins = 0, exhausted = 0;
      for (int t = 0; t < kTrials; ++t) {
        const auto out =
            AttackOnce(k, n, 600.0, MixSeed(0xE4, k * 100000 + n * 10 + t));
        disc_sum += out.discrepancy;
        kprime_sum += static_cast<double>(out.ever_accepted);
        wins += out.discrepancy > 0.5;
        exhausted += out.exhausted;
      }
      const double bound =
          4.0 * static_cast<double>(k) * std::log(static_cast<double>(n));
      table.AddRow({std::to_string(k), std::to_string(n),
                    FormatDouble(kprime_sum / kTrials, 1),
                    FormatDouble(bound, 1),
                    FormatDouble(disc_sum / kTrials, 4),
                    FormatDouble(static_cast<double>(wins) / kTrials, 2),
                    FormatDouble(static_cast<double>(exhausted) / kTrials,
                                 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nShape check: mean k' stays below the paper's 4k ln n "
               "bound, the attack wins (disc > 1/2) in essentially every "
               "trial, and the range never exhausts.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
