// Experiment E4 (Theorem 1.3, reservoir case): the Fig. 3 attack against
// ReservoirSample(k). The paper proves that with probability >= 1/2 the
// number of ever-accepted elements k' is at most 4 k ln n, all accepted
// elements are the k' smallest in the stream, and the final sample (a
// subset of them) has prefix discrepancy > 1/2. Sweeps k and n. The
// ever-accepted count comes straight from the driver (the AnyAdversary
// wrapper counts kept observations).

#include <cmath>
#include <cstdint>
#include <iostream>

#include "attacklab/game_driver.h"
#include "core/big_uint.h"
#include "harness/table.h"

namespace robust_sampling {
namespace {

void Run() {
  std::cout << "# E4: the Fig. 3 attack on ReservoirSample "
               "(Theorem 1.3, part 2)\n";
  std::cout << "universe ln N = 600 (sustains all configurations); "
               "5 trials/row\n\n";

  GameSpec spec;
  spec.sketch.kind = "reservoir";
  spec.sketch.log_universe = 600.0;
  spec.adversary = "bisection";
  spec.eps = 0.25;
  spec.trials = 5;

  MarkdownTable table({"k", "n", "mean k'", "4k ln n", "mean disc",
                       "frac disc>1/2", "frac exhausted"});
  for (size_t k : {size_t{2}, size_t{4}, size_t{8}, size_t{16}}) {
    for (size_t n : {size_t{1000}, size_t{4000}}) {
      spec.sketch.capacity = k;
      spec.n = n;
      spec.base_seed = MixSeed(0xE4, k * 100000 + n);
      const GameReport report = PlayGame<BigUint>(spec);
      const double bound =
          4.0 * static_cast<double>(k) * std::log(static_cast<double>(n));
      table.AddRow({std::to_string(k), std::to_string(n),
                    FormatDouble(report.MeanAcceptedCount(), 1),
                    FormatDouble(bound, 1),
                    FormatDouble(report.discrepancy.mean, 4),
                    FormatDouble(report.discrepancy.FractionAtLeast(0.5), 2),
                    FormatDouble(report.FractionExhausted(), 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nShape check: mean k' stays below the paper's 4k ln n "
               "bound, the attack wins (disc > 1/2) in essentially every "
               "trial, and the range never exhausts.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
