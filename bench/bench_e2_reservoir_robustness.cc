// Experiment E2 (Theorem 1.2, reservoir case): adversarial discrepancy of
// ReservoirSample(k) as k sweeps from far below the Theorem 1.3 attack
// threshold up to the Theorem 1.2 robustness bound
//   k* = ceil(2 (ln|R| + ln 2/delta) / eps^2),
// against the Fig. 3 bisection attack over a universe with ln N = 200.
// Expected shape: the attack wins (disc > eps, often > 1/2) for k below
// ~ln N / ln n and loses for larger k; at k = k* the success rate is
// >= 1 - delta.
//
// Also ablates the adversary's observation rate: the batched game
// (RunBatchedAdaptiveGame) lets the attacker see the sample only every b
// elements, and its discrepancy collapses as b grows — the quantitative
// version of the pipeline's "batching only coarsens adaptivity" argument.

#include <cstdint>
#include <iostream>

#include "attacklab/game_driver.h"
#include "core/big_uint.h"
#include "core/sample_bounds.h"
#include "harness/table.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.25;
constexpr double kDelta = 0.1;
constexpr double kLogUniverse = 200.0;
constexpr size_t kN = 8000;
constexpr size_t kTrials = 8;

void Run() {
  const size_t k_star = ReservoirRobustK(kEps, kDelta, kLogUniverse);
  const size_t k_attack = AttackThresholdReservoirK(kLogUniverse, kN, 1.0);
  std::cout << "# E2: Reservoir robustness under the bisection attack "
               "(Theorem 1.2 vs Theorem 1.3)\n";
  std::cout << "n = " << kN << ", ln|R| = " << kLogUniverse
            << ", eps = " << kEps << ", delta = " << kDelta
            << ", Thm 1.2 k* = " << k_star
            << ", Thm 1.3 attack threshold ~ln N/ln n = " << k_attack
            << ", " << kTrials << " trials/row\n\n";

  GameSpec spec;
  spec.sketch.kind = "reservoir";
  spec.sketch.log_universe = kLogUniverse;
  spec.adversary = "bisection";
  spec.n = kN;
  spec.eps = kEps;
  spec.trials = kTrials;
  spec.base_seed = 0xE2;

  MarkdownTable table({"k", "k/k*", "mean disc", "max disc",
                       "Pr[disc<=eps]", "attack wins (disc>1/2)"});
  for (size_t k : {size_t{2}, size_t{4}, size_t{8}, size_t{16}, size_t{64},
                   size_t{256}, size_t{1024}, k_star}) {
    spec.sketch.capacity = k;
    const GameReport report = PlayGame<BigUint>(spec);
    table.AddRow({std::to_string(k),
                  FormatDouble(static_cast<double>(k) / k_star, 4),
                  FormatDouble(report.discrepancy.mean, 4),
                  FormatDouble(report.discrepancy.max, 4),
                  FormatDouble(report.FractionRobust(kEps), 2),
                  FormatDouble(report.discrepancy.FractionAtLeast(0.5), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: attack wins at k <~ " << k_attack
            << "; Pr[disc<=eps] >= " << 1.0 - kDelta << " at k = k* = "
            << k_star << ".\n";

  std::cout << "\n## Ablation: rate-limited adversary (batched game, "
               "k = 4)\n\n";
  MarkdownTable ab({"batch b", "mean disc", "max disc", "Pr[disc<=eps]"});
  spec.sketch.capacity = 4;
  for (size_t b : {size_t{1}, size_t{16}, size_t{256}, kN}) {
    spec.batch = b;
    const GameReport report = PlayGame<BigUint>(spec);
    ab.AddRow({std::to_string(b), FormatDouble(report.discrepancy.mean, 4),
               FormatDouble(report.discrepancy.max, 4),
               FormatDouble(report.FractionRobust(kEps), 2)});
  }
  ab.Print(std::cout);
  std::cout << "\nShape check: at b = 1 the attack wins as in the main "
               "table; with batch-boundary observation only, the attack "
               "degrades toward the oblivious case as b grows.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
