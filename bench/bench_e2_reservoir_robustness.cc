// Experiment E2 (Theorem 1.2, reservoir case): adversarial discrepancy of
// ReservoirSample(k) as k sweeps from far below the Theorem 1.3 attack
// threshold up to the Theorem 1.2 robustness bound
//   k* = ceil(2 (ln|R| + ln 2/delta) / eps^2),
// against the Fig. 3 bisection attack over a universe with ln N = 200.
// Expected shape: the attack wins (disc > eps, often > 1/2) for k below
// ~ln N / ln n and loses for larger k; at k = k* the success rate is
// >= 1 - delta.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "adversary/bisection_adversary.h"
#include "core/adversarial_game.h"
#include "core/big_uint.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "harness/table.h"
#include "harness/trial_runner.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.25;
constexpr double kDelta = 0.1;
constexpr double kLogUniverse = 200.0;
constexpr size_t kN = 8000;
constexpr size_t kTrials = 8;

double AttackOnce(size_t k, uint64_t seed) {
  // The accepted-element count is ~ k (1 + ln(n/k)); pick the split so the
  // range budget is spent evenly (split = 1 - k'/n is near-optimal).
  const double k_accepted =
      static_cast<double>(k) *
      (1.0 + std::log(static_cast<double>(kN) / static_cast<double>(k)));
  const double split =
      std::min(1.0 - 1e-6, std::max(0.5, 1.0 - k_accepted / kN));
  BisectionAdversaryBig adv(BigUint::ApproxExp(kLogUniverse), split);
  ReservoirSampler<BigUint> sampler(k, seed);
  const auto r = RunAdaptiveGame<BigUint>(
      sampler, adv, kN,
      [](const std::vector<BigUint>& x, const std::vector<BigUint>& s) {
        return PrefixDiscrepancy(x, s);
      },
      kEps);
  return r.discrepancy;
}

void Run() {
  const size_t k_star = ReservoirRobustK(kEps, kDelta, kLogUniverse);
  const size_t k_attack = AttackThresholdReservoirK(kLogUniverse, kN, 1.0);
  std::cout << "# E2: Reservoir robustness under the bisection attack "
               "(Theorem 1.2 vs Theorem 1.3)\n";
  std::cout << "n = " << kN << ", ln|R| = " << kLogUniverse
            << ", eps = " << kEps << ", delta = " << kDelta
            << ", Thm 1.2 k* = " << k_star
            << ", Thm 1.3 attack threshold ~ln N/ln n = " << k_attack
            << ", " << kTrials << " trials/row\n\n";
  MarkdownTable table({"k", "k/k*", "mean disc", "max disc",
                       "Pr[disc<=eps]", "attack wins (disc>1/2)"});
  for (size_t k : {size_t{2}, size_t{4}, size_t{8}, size_t{16}, size_t{64},
                   size_t{256}, size_t{1024}, k_star}) {
    const auto stats = RunTrials(kTrials, 0xE2, [&](uint64_t seed) {
      return AttackOnce(k, seed);
    });
    table.AddRow({std::to_string(k),
                  FormatDouble(static_cast<double>(k) / k_star, 4),
                  FormatDouble(stats.mean, 4), FormatDouble(stats.max, 4),
                  FormatDouble(stats.FractionAtMost(kEps), 2),
                  FormatDouble(stats.FractionAtLeast(0.5), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: attack wins at k <~ " << k_attack
            << "; Pr[disc<=eps] >= " << 1.0 - kDelta << " at k = k* = "
            << k_star << ".\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
