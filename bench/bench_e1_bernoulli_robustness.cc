// Experiment E1 (Theorem 1.2, Bernoulli case): adversarial discrepancy of
// BernoulliSample(p) as p sweeps across the Theorem 1.2 bound
//   p* = 10 (ln|R| + ln 4/delta) / (eps^2 n),
// against the Fig. 3 bisection attack over the prefix family on a universe
// with ln N = 60 (|R| = N). Expected shape: discrepancy decreases
// monotonically in p and the empirical success rate Pr[disc <= eps]
// reaches >= 1 - delta at p >= p*.
//
// Driven by the AttackLab GameDriver: the sampler and adversary are looked
// up by registry key and trials run in parallel (bit-identical to serial).

#include <algorithm>
#include <cstdint>
#include <iostream>

#include "attacklab/game_driver.h"
#include "core/big_uint.h"
#include "core/sample_bounds.h"
#include "harness/table.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.25;
constexpr double kDelta = 0.1;
constexpr double kLogUniverse = 60.0;
constexpr size_t kN = 20000;
constexpr size_t kTrials = 10;

void Run() {
  const double p_star = BernoulliRobustP(kEps, kDelta, kLogUniverse, kN);
  std::cout << "# E1: Bernoulli robustness under the bisection attack "
               "(Theorem 1.2)\n";
  std::cout << "n = " << kN << ", ln|R| = " << kLogUniverse
            << ", eps = " << kEps << ", delta = " << kDelta
            << ", Thm 1.2 p* = " << FormatDouble(p_star, 4) << ", "
            << kTrials << " trials/row\n\n";

  GameSpec spec;
  spec.sketch.kind = "bernoulli";
  spec.sketch.log_universe = kLogUniverse;
  spec.adversary = "bisection";
  spec.n = kN;
  spec.eps = kEps;
  spec.trials = kTrials;
  spec.base_seed = 0xE1;

  MarkdownTable table({"p/p*", "p", "E[sample]", "mean disc", "max disc",
                       "Pr[disc<=eps]", "robust (>=1-delta)"});
  for (double mult :
       {0.0005, 0.002, 0.0078125, 0.03125, 0.125, 0.5, 1.0, 2.0}) {
    const double p = std::min(1.0, mult * p_star);
    spec.sketch.probability = p;
    const GameReport report = PlayGame<BigUint>(spec);
    const double success = report.FractionRobust(kEps);
    table.AddRow({FormatDouble(mult, 4), FormatDouble(p, 4),
                  FormatDouble(p * kN, 1),
                  FormatDouble(report.discrepancy.mean, 4),
                  FormatDouble(report.discrepancy.max, 4),
                  FormatDouble(success, 2),
                  FormatBool(success >= 1.0 - kDelta)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: rows with p >= p* must report robust = yes; "
               "discrepancy should grow as p shrinks.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
