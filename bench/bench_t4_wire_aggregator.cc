// T4: cross-process snapshot aggregation + wire codec throughput.
//
// Two row families in one table (shared columns, "-" where a cell does
// not apply), distinguished by the `op` column:
//
//  * op = "aggregate": N forked worker processes each run a
//    ShardedPipeline over a disjoint slice of one stream, serialize their
//    merged snapshot (wire/snapshot.h) and ship it to the parent over a
//    pipe; the parent revives and merges the N snapshots into one summary
//    of the whole stream. The run *asserts* the distributed answers match
//    a single-process pipeline over the same stream — within 2*eps for
//    the robust sampler (each side is an eps-approximation of the
//    identical union, Theorem 1.2 + mergeability), bit-exactly for
//    CountMin (counter addition is associative and the row hashes are
//    shared via config.seed). Workers signal readiness with one byte
//    after building their snapshot, so the parent-side clock covers
//    transfer + revive + merge only, not the children's pipeline compute.
//
//  * op = "wire/serialize" and op = "wire/ship": per-kind codec
//    throughput for every registered kind. serialize times repeated
//    in-memory WriteSnapshot calls; ship forks one child that writes R
//    snapshot copies through BufferedSink over a pipe while the parent
//    clocks reading + reviving them through one BufferedSource. These are
//    the rows tools/bench_diff.py --gate t4 enforces floors on.
//
// Writes BENCH_t4_wire.json; RS_BENCH_SMOKE=1 shrinks the stream for CI.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/random.h"
#include "harness/table.h"
#include "obs/metrics.h"
#include "pipeline/sharded_pipeline.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "wire/codec.h"
#include "wire/snapshot.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.05;
constexpr double kDelta = 0.05;
constexpr uint64_t kUniverse = 4096;
constexpr uint64_t kBaseSeed = 0x7A11;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<int64_t> MakeStream(size_t n) {
  Rng rng(kBaseSeed);
  std::vector<int64_t> stream;
  stream.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    stream.push_back(static_cast<int64_t>(rng.NextBelow(kUniverse)) + 1);
  }
  return stream;
}

SketchConfig ConfigFor(const std::string& kind, uint64_t seed) {
  SketchConfig config;
  config.kind = kind;
  config.eps = kEps;
  config.delta = kDelta;
  config.universe_size = kUniverse;
  config.width = 2048;
  config.depth = 4;
  config.seed = seed;
  return config;
}

StreamSketch<int64_t> RunPipeline(const SketchConfig& config,
                                  std::span<const int64_t> slice,
                                  size_t batch_size) {
  PipelineOptions options;
  options.num_shards = 2;
  ShardedPipeline<int64_t> pipeline(config, options);
  for (size_t off = 0; off < slice.size(); off += batch_size) {
    const size_t len = std::min(batch_size, slice.size() - off);
    pipeline.Ingest(slice.subspan(off, len));
  }
  return pipeline.Snapshot();
}

struct AggregateResult {
  StreamSketch<int64_t> merged;
  size_t snapshot_bytes = 0;
  double ship_seconds = 0.0;  // parent-side: read + revive + merge
};

// Forks `workers` children; child w pipelines slice w, serializes its
// snapshot in memory, signals readiness with one byte, then streams the
// bytes down the pipe. The parent waits for every ready byte before
// starting the ship clock, so pipeline compute never pollutes the wire
// measurement. CountMin keeps config.seed shared across workers (hash
// mergeability); the samplers get an independent seed per worker, exactly
// like ShardedPipeline derives per-shard instance seeds.
AggregateResult ForkAndAggregate(const std::string& kind,
                                 std::span<const int64_t> stream,
                                 size_t workers, size_t batch_size) {
  std::vector<std::array<int, 2>> pipes(workers);
  std::vector<pid_t> children(workers);
  const size_t slice_len = stream.size() / workers;
  for (size_t w = 0; w < workers; ++w) {
    RS_CHECK(pipe(pipes[w].data()) == 0);
    const pid_t pid = fork();
    RS_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) {
      // Child: pipeline the slice, ship one snapshot, exit. A non-zero
      // exit status is the child's only error channel; the parent checks.
      close(pipes[w][0]);
      const SketchConfig config =
          kind == "count_min"
              ? ConfigFor(kind, kBaseSeed)
              : ConfigFor(kind, MixSeed(kBaseSeed, 1000 + w));
      const size_t off = w * slice_len;
      const size_t len =
          w + 1 == workers ? stream.size() - off : slice_len;
      auto snapshot = RunPipeline(config, stream.subspan(off, len),
                                  batch_size);
      wire::BufferSink staged;
      const bool sent = wire::WriteSnapshot(snapshot, config, staged);
      const uint8_t ready = 1;
      bool ok = sent && write(pipes[w][1], &ready, 1) == 1;
      if (ok) {
        wire::FdSink sink(pipes[w][1]);
        sink.Append(staged.bytes().data(), staged.bytes().size());
        ok = sink.ok();
      }
      close(pipes[w][1]);
      _exit(ok ? 0 : 1);
    }
    children[w] = pid;
    close(pipes[w][1]);
  }

  // Barrier: every worker has finished pipelining and serializing.
  for (size_t w = 0; w < workers; ++w) {
    uint8_t ready = 0;
    RS_CHECK_MSG(read(pipes[w][0], &ready, 1) == 1 && ready == 1,
                 "worker failed before signaling ready");
  }

  AggregateResult result;
  const auto start = Clock::now();
  for (size_t w = 0; w < workers; ++w) {
    // Decode off the pipe through the buffered adapter — FdSource still
    // has no size knowledge (remaining() is nullopt), so this exercises
    // the codec's hard-cap validation path end to end.
    wire::FdSource fd_source(pipes[w][0]);
    wire::BufferedSource source(fd_source);
    std::string error;
    auto revived = wire::ReadSnapshot<int64_t>(source, &error);
    RS_CHECK_MSG(revived.valid(), error.c_str());
    result.snapshot_bytes += fd_source.bytes_read();
    close(pipes[w][0]);
    if (!result.merged.valid()) {
      result.merged = std::move(revived);
    } else {
      result.merged.MergeFrom(revived);
    }
  }
  result.ship_seconds = SecondsSince(start);
  for (pid_t pid : children) {
    int status = 0;
    RS_CHECK(waitpid(pid, &status, 0) == pid);
    RS_CHECK_MSG(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                 "worker process failed");
  }
  return result;
}

// Merged-vs-single acceptance: both summaries cover the identical stream.
double AssertAccuracy(const std::string& kind,
                      const StreamSketch<int64_t>& merged,
                      const StreamSketch<int64_t>& single, size_t n) {
  RS_CHECK(merged.StreamSize() == n);
  RS_CHECK(single.StreamSize() == n);
  double worst = 0.0;
  if (kind == "count_min") {
    // Counter addition is exact: estimates must agree bit for bit.
    for (uint64_t x = 1; x <= kUniverse; ++x) {
      const double diff =
          std::abs(merged.EstimateFrequency(static_cast<int64_t>(x)) -
                   single.EstimateFrequency(static_cast<int64_t>(x)));
      worst = std::max(worst, diff);
    }
    RS_CHECK_MSG(worst == 0.0, "merged CountMin diverged from single-process");
  } else {
    // Robust sampler: each side is an eps-approximation of the same
    // stream w.r.t. the prefix system, so ranks differ by at most 2*eps.
    for (double x = 0.0; x <= static_cast<double>(kUniverse); x += 64.0) {
      worst = std::max(worst, std::abs(merged.Rank(x) - single.Rank(x)));
    }
    RS_CHECK_MSG(worst <= 2.0 * kEps,
                 "merged sample violates the 2*eps rank bound");
  }
  return worst;
}

// Repetitions that move ~4 MiB per measurement, bounded so tiny and huge
// snapshots both finish promptly.
size_t RepsFor(size_t snapshot_bytes) {
  constexpr size_t kTargetBytes = size_t{4} * 1024 * 1024;
  const size_t reps = (kTargetBytes + snapshot_bytes - 1) / snapshot_bytes;
  return std::clamp<size_t>(reps, 4, 64);
}

// Child writes `reps` copies of the snapshot through BufferedSink over the
// pipe; the parent clocks reading + reviving all of them through one
// BufferedSource. Returns parent-side seconds.
double TimeShip(const StreamSketch<int64_t>& sketch,
                const SketchConfig& config, size_t reps) {
  int fds[2];
  RS_CHECK(pipe(fds) == 0);
  const pid_t pid = fork();
  RS_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    close(fds[0]);
    const uint8_t ready = 1;
    bool ok = write(fds[1], &ready, 1) == 1;
    {
      wire::FdSink fd_sink(fds[1]);
      wire::BufferedSink sink(fd_sink);
      for (size_t r = 0; ok && r < reps; ++r) {
        ok = wire::WriteSnapshot(sketch, config, sink);
      }
      sink.Flush();
      ok = ok && fd_sink.ok();
    }
    close(fds[1]);
    _exit(ok ? 0 : 1);
  }
  close(fds[1]);
  uint8_t ready = 0;
  RS_CHECK_MSG(read(fds[0], &ready, 1) == 1 && ready == 1,
               "ship worker failed before signaling ready");
  const auto start = Clock::now();
  wire::FdSource fd_source(fds[0]);
  wire::BufferedSource source(fd_source);
  for (size_t r = 0; r < reps; ++r) {
    std::string error;
    auto revived = wire::ReadSnapshot<int64_t>(source, &error);
    RS_CHECK_MSG(revived.valid(), error.c_str());
  }
  const double seconds = SecondsSince(start);
  close(fds[0]);
  int status = 0;
  RS_CHECK(waitpid(pid, &status, 0) == pid);
  RS_CHECK_MSG(WIFEXITED(status) && WEXITSTATUS(status) == 0,
               "ship worker failed");
  return seconds;
}

// Per-kind codec throughput rows for every registered kind — the floors
// tools/bench_diff.py --gate t4 enforces in CI.
void AddCodecRows(MarkdownTable& table, std::span<const int64_t> stream) {
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    const SketchConfig config = ConfigFor(kind, kBaseSeed);
    auto sketch = SketchRegistry<int64_t>::Global().Create(config);
    sketch.InsertBatch(stream);

    wire::BufferSink first;
    RS_CHECK_MSG(wire::WriteSnapshot(sketch, config, first),
                 "snapshot serialization failed");
    const size_t snapshot_bytes = first.bytes().size();
    const size_t reps = RepsFor(snapshot_bytes);
    const double total_mib =
        static_cast<double>(snapshot_bytes) * static_cast<double>(reps) /
        (1024.0 * 1024.0);

    const auto serialize_start = Clock::now();
    for (size_t r = 0; r < reps; ++r) {
      wire::BufferSink sink;
      RS_CHECK(wire::WriteSnapshot(sketch, config, sink));
    }
    const double serialize_s = SecondsSince(serialize_start);
    const double ship_s = TimeShip(sketch, config, reps);

    const std::string kib =
        FormatDouble(static_cast<double>(snapshot_bytes) / 1024.0, 1);
    const std::string n_str = std::to_string(stream.size());
    table.AddRow({"wire/serialize", kind, "-", n_str, kib,
                  FormatDouble(serialize_s * 1e3, 2),
                  FormatDouble(total_mib / serialize_s, 1), "-", "-"});
    table.AddRow({"wire/ship", kind, "-", n_str, kib,
                  FormatDouble(ship_s * 1e3, 2),
                  FormatDouble(total_mib / ship_s, 1), "-", "-"});
  }
}

void Run(bool with_metrics) {
  const bool smoke = []() {
    const char* env = std::getenv("RS_BENCH_SMOKE");
    return env != nullptr && *env != '\0';
  }();
  const size_t n = smoke ? 200'000 : 4'000'000;
  constexpr size_t kBatchSize = 4096;
  const auto stream = MakeStream(n);

  std::cout << "# T4: cross-process snapshot aggregation (src/wire/)\n";
  std::cout << "aggregate rows: N forked workers pipeline disjoint stream "
               "slices and ship snapshots over pipes; the parent revives "
               "and merges them after a ready-byte barrier, so ship time "
               "is wire-only. Asserts merged-vs-single accuracy (2*eps "
               "ranks for the sampler, exact for CountMin).\n"
               "wire/serialize + wire/ship rows: per-kind codec "
               "throughput, gated in CI by bench_diff --gate t4. n = "
            << n << ", eps = " << kEps << ".\n\n";

  MarkdownTable table({"op", "kind", "workers", "n", "KiB", "ms", "MiB/s",
                       "worst |merged - single|", "bound"});
  for (const std::string kind : {"robust_sample", "count_min"}) {
    const SketchConfig single_config = ConfigFor(kind, kBaseSeed);
    auto single = RunPipeline(single_config, stream, kBatchSize);
    for (size_t workers : {2, 4, 8}) {
      auto result = ForkAndAggregate(kind, stream, workers, kBatchSize);
      const double worst = AssertAccuracy(kind, result.merged, single, n);
      const double mib = static_cast<double>(result.snapshot_bytes) /
                         (1024.0 * 1024.0);
      table.AddRow({"aggregate", kind, std::to_string(workers),
                    std::to_string(n), FormatDouble(mib * 1024.0, 1),
                    FormatDouble(result.ship_seconds * 1e3, 2),
                    FormatDouble(mib / result.ship_seconds, 1),
                    FormatDouble(worst, 4),
                    kind == "count_min" ? "exact" : FormatDouble(2 * kEps, 2)});
    }
  }
  AddCodecRows(table, stream);
  table.Print(std::cout);
  // Metrics note: the forked workers' counters die with the children; the
  // snapshot embedded here is the parent's view (bytes in, deserialize
  // latency per kind, pipeline counters for the single-process runs).
  const std::vector<std::pair<std::string, std::string>> extra_meta = {
      {"stream_length", std::to_string(n)},
      {"batch_size", std::to_string(kBatchSize)},
      {"smoke", smoke ? "true" : "false"},
      {"zstd", wire::ZstdSupported() ? "true" : "false"},
  };
  std::string metrics_json;
  if (with_metrics) {
    metrics_json = obs::MetricRegistry::Global().ToJson();
  }
  WriteBenchJson("t4_wire", table, extra_meta,
                 with_metrics ? &metrics_json : nullptr);
  std::cout << "\nOK: merged-vs-single accuracy asserted for every row.\n";
}

}  // namespace
}  // namespace robust_sampling

int main(int argc, char** argv) {
  bool with_metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--metrics") with_metrics = true;
  }
  robust_sampling::Run(with_metrics);
  return 0;
}
