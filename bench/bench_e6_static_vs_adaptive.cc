// Experiment E6 (the paper's central contrast): VC-dimension governs the
// static setting, cardinality ln|R| governs the adaptive one. The prefix
// family has VC-dimension 1, so the classical static bound gives a small
// constant-size sample — enough for any oblivious stream, but defeated by
// the adaptive bisection attack over a large universe. The Theorem 1.2
// size (proportional to ln N) restores robustness.

#include <cmath>
#include <cstdint>
#include <iostream>

#include "attacklab/game_driver.h"
#include "core/big_uint.h"
#include "core/sample_bounds.h"
#include "harness/table.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.25;
constexpr double kDelta = 0.1;
constexpr size_t kN = 4000;
constexpr double kLogUniverse = 3000.0;  // ln N: room for the attack at k~100
constexpr size_t kTrials = 8;

void Run() {
  const size_t k_static = ReservoirStaticK(kEps, kDelta, /*vc_dimension=*/1.0);
  const size_t k_robust = ReservoirRobustK(kEps, kDelta, kLogUniverse);
  std::cout << "# E6: static (VC) sample size vs adaptive (ln|R|) sample "
               "size — the paper's headline gap\n";
  std::cout << "prefix family, VC-dim = 1, ln N = " << kLogUniverse
            << ", n = " << kN << ", eps = " << kEps << ", delta = " << kDelta
            << "\nstatic k (VC bound) = " << k_static
            << "; robust k (Thm 1.2) = " << k_robust << "; " << kTrials
            << " trials/cell\n\n";

  // Oblivious baseline: an i.i.d. uniform stream over a 2^30 universe.
  GameSpec oblivious;
  oblivious.sketch.kind = "reservoir";
  oblivious.sketch.universe_size = uint64_t{1} << 30;
  oblivious.adversary = "uniform";
  oblivious.n = kN;
  oblivious.eps = kEps;
  oblivious.trials = kTrials;
  oblivious.base_seed = 0xE6;

  // Adaptive attacker: Fig. 3 bisection over a ln N = 3000 universe.
  GameSpec adaptive = oblivious;
  adaptive.sketch.log_universe = kLogUniverse;
  adaptive.adversary = "bisection";
  adaptive.base_seed = 0xE6A;

  MarkdownTable table(
      {"k", "sized by", "adversary", "mean disc", "Pr[disc<=eps]"});
  struct Row {
    size_t k;
    const char* sized_by;
  };
  const Row rows[] = {{k_static, "static VC bound"},
                      {k_robust, "Thm 1.2 (ln N)"}};
  for (const auto& row : rows) {
    oblivious.sketch.capacity = row.k;
    const GameReport s = PlayGame<int64_t>(oblivious);
    table.AddRow({std::to_string(row.k), row.sized_by, "static uniform",
                  FormatDouble(s.discrepancy.mean, 4),
                  FormatDouble(s.FractionRobust(kEps), 2)});
    adaptive.sketch.capacity = row.k;
    const GameReport a = PlayGame<BigUint>(adaptive);
    table.AddRow({std::to_string(row.k), row.sized_by, "adaptive bisection",
                  FormatDouble(a.discrepancy.mean, 4),
                  FormatDouble(a.FractionRobust(kEps), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: the VC-sized sample succeeds on the static "
               "stream and fails against the adaptive adversary; the "
               "ln N-sized sample succeeds against both. This is Theorems "
               "1.2 + 1.3 in one table.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
