// Experiment E6 (the paper's central contrast): VC-dimension governs the
// static setting, cardinality ln|R| governs the adaptive one. The prefix
// family has VC-dimension 1, so the classical static bound gives a small
// constant-size sample — enough for any oblivious stream, but defeated by
// the adaptive bisection attack over a large universe. The Theorem 1.2
// size (proportional to ln N) restores robustness.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "adversary/basic_adversaries.h"
#include "adversary/bisection_adversary.h"
#include "core/adversarial_game.h"
#include "core/big_uint.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "harness/table.h"
#include "harness/trial_runner.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.25;
constexpr double kDelta = 0.1;
constexpr size_t kN = 4000;
constexpr double kLogUniverse = 3000.0;  // ln N: room for the attack at k~100
constexpr size_t kTrials = 8;

double StaticOnce(size_t k, uint64_t seed) {
  UniformAdversary adv(1 << 30, MixSeed(seed, 23));
  ReservoirSampler<int64_t> sampler(k, seed);
  return RunAdaptiveGame<int64_t>(
             sampler, adv, kN,
             [](const std::vector<int64_t>& x,
                const std::vector<int64_t>& s) {
               return PrefixDiscrepancy(x, s);
             },
             kEps)
      .discrepancy;
}

double AdaptiveOnce(size_t k, uint64_t seed) {
  const double k_accepted =
      static_cast<double>(k) *
      (1.0 + std::log(static_cast<double>(kN) / static_cast<double>(k)));
  const double split =
      std::min(1.0 - 1e-6, std::max(0.5, 1.0 - k_accepted / kN));
  BisectionAdversaryBig adv(BigUint::ApproxExp(kLogUniverse), split);
  ReservoirSampler<BigUint> sampler(k, seed);
  return RunAdaptiveGame<BigUint>(
             sampler, adv, kN,
             [](const std::vector<BigUint>& x,
                const std::vector<BigUint>& s) {
               return PrefixDiscrepancy(x, s);
             },
             kEps)
      .discrepancy;
}

void Run() {
  const size_t k_static = ReservoirStaticK(kEps, kDelta, /*vc_dimension=*/1.0);
  const size_t k_robust = ReservoirRobustK(kEps, kDelta, kLogUniverse);
  std::cout << "# E6: static (VC) sample size vs adaptive (ln|R|) sample "
               "size — the paper's headline gap\n";
  std::cout << "prefix family, VC-dim = 1, ln N = " << kLogUniverse
            << ", n = " << kN << ", eps = " << kEps << ", delta = " << kDelta
            << "\nstatic k (VC bound) = " << k_static
            << "; robust k (Thm 1.2) = " << k_robust << "; " << kTrials
            << " trials/cell\n\n";
  MarkdownTable table(
      {"k", "sized by", "adversary", "mean disc", "Pr[disc<=eps]"});
  struct Row {
    size_t k;
    const char* sized_by;
  };
  const Row rows[] = {{k_static, "static VC bound"},
                      {k_robust, "Thm 1.2 (ln N)"}};
  for (const auto& row : rows) {
    {
      const auto stats = RunTrials(kTrials, 0xE6, [&](uint64_t seed) {
        return StaticOnce(row.k, seed);
      });
      table.AddRow({std::to_string(row.k), row.sized_by, "static uniform",
                    FormatDouble(stats.mean, 4),
                    FormatDouble(stats.FractionAtMost(kEps), 2)});
    }
    {
      const auto stats = RunTrials(kTrials, 0xE6A, [&](uint64_t seed) {
        return AdaptiveOnce(row.k, seed);
      });
      table.AddRow({std::to_string(row.k), row.sized_by,
                    "adaptive bisection", FormatDouble(stats.mean, 4),
                    FormatDouble(stats.FractionAtMost(kEps), 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nShape check: the VC-sized sample succeeds on the static "
               "stream and fails against the adaptive adversary; the "
               "ln N-sized sample succeeds against both. This is Theorems "
               "1.2 + 1.3 in one table.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
