// Experiment E10 (Section 1.2, center points): a (beta + eps)-center of a
// robust sample is a beta-center of the stream. We stream 2-D points
// (uniform square, ring, and skewed-mixture distributions), maintain a
// reservoir sized by Theorem 1.2 for the discretized halfspace family, and
// compare the Tukey depth of the sample-derived center in the sample vs in
// the full stream.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <numbers>
#include <vector>

#include "core/random.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "geometry/center_point.h"
#include "harness/table.h"
#include "harness/trial_runner.h"
#include "setsystem/halfspace_family.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.05;
constexpr double kDelta = 0.1;
constexpr int kDirections = 32;
constexpr size_t kN = 40000;
constexpr size_t kTrials = 4;

std::vector<Point> MakeStream(int kind, uint64_t seed) {
  switch (kind) {
    case 0:
      return UniformPointStream(kN, 2, -1.0, 1.0, seed);
    case 1: {  // ring
      Rng rng(seed);
      std::vector<Point> pts;
      pts.reserve(kN);
      for (size_t i = 0; i < kN; ++i) {
        const double t = rng.NextDoubleIn(0.0, 2.0 * std::numbers::pi);
        const double r = rng.NextDoubleIn(0.9, 1.1);
        pts.push_back(Point{r * std::cos(t), r * std::sin(t)});
      }
      return pts;
    }
    default:  // skewed mixture: 90% near (0,0), 10% near (5,5)
      return GaussianMixturePointStream(
          kN,
          {{0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0},
           {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {5.0, 5.0}},
          0.5, seed);
  }
}

struct DepthResult {
  double depth_in_sample;
  double depth_in_stream;
};

DepthResult TrialOnce(int kind, size_t k, uint64_t seed) {
  ReservoirSampler<Point> reservoir(k, seed);
  const auto stream = MakeStream(kind, MixSeed(seed, 53));
  for (const Point& p : stream) reservoir.Insert(p);
  const Point center = ApproximateCenter2D(reservoir.sample(), kDirections);
  return DepthResult{
      TukeyDepth2D(reservoir.sample(), center, kDirections),
      TukeyDepth2D(stream, center, kDirections)};
}

void Run() {
  // Halfspace family: kDirections normals x an offset grid of 200 levels.
  HalfspaceFamily2D family(kDirections, 200, -8.0, 8.0);
  const size_t k = ReservoirRobustK(kEps, kDelta, family.LogCardinality());
  std::cout << "# E10: beta-center points from a robust sample "
               "(Section 1.2, [CEM+96])\n";
  std::cout << "n = " << kN << ", halfspace family " << family.Name()
            << " (ln|R| = " << FormatDouble(family.LogCardinality(), 1)
            << "), Thm 1.2 k = " << k << ", eps = " << kEps << ", "
            << kTrials << " trials/row\n\n";
  MarkdownTable table({"distribution", "mean depth(sample)",
                       "mean depth(stream)", "mean depth loss",
                       "loss <= eps"});
  const char* names[] = {"uniform square", "ring", "skewed mixture"};
  for (int kind = 0; kind < 3; ++kind) {
    double ds = 0.0, dx = 0.0, worst_loss = 0.0;
    for (size_t t = 0; t < kTrials; ++t) {
      const auto r = TrialOnce(kind, k, MixSeed(0xE10, kind * 100 + t));
      ds += r.depth_in_sample;
      dx += r.depth_in_stream;
      worst_loss = std::max(worst_loss,
                            r.depth_in_sample - r.depth_in_stream);
    }
    table.AddRow({names[kind], FormatDouble(ds / kTrials, 4),
                  FormatDouble(dx / kTrials, 4),
                  FormatDouble(ds / kTrials - dx / kTrials, 4),
                  FormatBool(worst_loss <= kEps)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: the center found on the sample keeps (up to "
               "eps) its depth on the full stream — depth(stream) >= "
               "depth(sample) - eps — so a (beta+eps)-center of the sample "
               "certifies a beta-center of the stream. Depths near 1/2 for "
               "symmetric data, lower for the skewed mixture.\n";
}

}  // namespace
}  // namespace robust_sampling

int main() {
  robust_sampling::Run();
  return 0;
}
